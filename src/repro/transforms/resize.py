"""Resolution-scaling transformations.

All functions accept a single HWC image (float array in [0, 1]) or a batch of
NHWC images and return the same rank.  Three interpolation modes are provided;
``area`` (block averaging) is the default because it is the natural choice
when downscaling camera frames for small classifiers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resize", "resize_nearest", "resize_bilinear", "resize_area"]


def _as_batch(image: np.ndarray) -> tuple[np.ndarray, bool]:
    if image.ndim == 3:
        return image[None, ...], True
    if image.ndim == 4:
        return image, False
    raise ValueError(f"expected HWC or NHWC array, got shape {image.shape}")


def _validate_size(size: int) -> None:
    if size <= 0:
        raise ValueError("target size must be positive")


def resize_nearest(image: np.ndarray, size: int) -> np.ndarray:
    # shape: (..., H, W, C) -> (..., R, R, C)
    """Nearest-neighbour resize to ``size`` x ``size``."""
    _validate_size(size)
    batch, squeeze = _as_batch(image)
    _, height, width, _ = batch.shape
    rows = np.clip((np.arange(size) + 0.5) * height / size, 0, height - 1).astype(int)
    cols = np.clip((np.arange(size) + 0.5) * width / size, 0, width - 1).astype(int)
    out = batch[:, rows][:, :, cols]
    return out[0] if squeeze else out


def resize_bilinear(image: np.ndarray, size: int) -> np.ndarray:
    # shape: (..., H, W, C) -> (..., R, R, C)
    """Bilinear resize to ``size`` x ``size``."""
    _validate_size(size)
    batch, squeeze = _as_batch(image)
    _, height, width, _ = batch.shape

    def grid(n_out: int, n_in: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        coords = (np.arange(n_out) + 0.5) * n_in / n_out - 0.5
        coords = np.clip(coords, 0, n_in - 1)
        low = np.floor(coords).astype(int)
        high = np.minimum(low + 1, n_in - 1)
        frac = coords - low
        return low, high, frac

    row_lo, row_hi, row_frac = grid(size, height)
    col_lo, col_hi, col_frac = grid(size, width)

    top = (batch[:, row_lo][:, :, col_lo] * (1 - col_frac)[None, None, :, None]
           + batch[:, row_lo][:, :, col_hi] * col_frac[None, None, :, None])
    bottom = (batch[:, row_hi][:, :, col_lo] * (1 - col_frac)[None, None, :, None]
              + batch[:, row_hi][:, :, col_hi] * col_frac[None, None, :, None])
    out = top * (1 - row_frac)[None, :, None, None] + bottom * row_frac[None, :, None, None]
    return out[0] if squeeze else out


def resize_area(image: np.ndarray, size: int) -> np.ndarray:
    # shape: (..., H, W, C) -> (..., R, R, C)
    """Area (block-average) resize to ``size`` x ``size``.

    Exact block averaging when the input size is an integer multiple of the
    output size; otherwise falls back to bilinear interpolation, which is a
    good approximation for arbitrary ratios.
    """
    _validate_size(size)
    batch, squeeze = _as_batch(image)
    n, height, width, channels = batch.shape
    if height % size == 0 and width % size == 0:
        fh, fw = height // size, width // size
        out = batch.reshape(n, size, fh, size, fw, channels).mean(axis=(2, 4))
        return out[0] if squeeze else out
    return resize_bilinear(image, size)


_MODES = {
    "nearest": resize_nearest,
    "bilinear": resize_bilinear,
    "area": resize_area,
}


def resize(image: np.ndarray, size: int, mode: str = "area") -> np.ndarray:
    # shape: (..., H, W, C) -> (..., R, R, C)
    """Resize ``image`` to ``size`` x ``size`` using the given interpolation mode."""
    try:
        fn = _MODES[mode]
    except KeyError:
        raise ValueError(f"unknown resize mode {mode!r}; "
                         f"choose from {sorted(_MODES)}") from None
    # No-op shortcut when the image is already the requested size.
    spatial = image.shape[:2] if image.ndim == 3 else image.shape[1:3]
    if spatial == (size, size):
        return image.copy()
    return fn(image, size)
