"""Declarative transformation specifications (the elements of the set ``F``).

A :class:`TransformSpec` names one *physical representation* of the input
image: a target square resolution plus one of the paper's five color variants.
The cross product of a resolution list and the color variants — built by
:func:`standard_transform_grid` — is the paper's 4 x 5 = 20-element ``F``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transforms.color import COLOR_MODES, channels_for_mode, to_color_mode
from repro.transforms.resize import resize

__all__ = [
    "TransformSpec",
    "standard_transform_grid",
    "transform_subsets",
    "PAPER_RESOLUTIONS",
    "PAPER_COLOR_MODES",
]

#: The resolutions used in the paper's experiments (Section VII-A).
PAPER_RESOLUTIONS = (30, 60, 120, 224)

#: The color variants used in the paper's experiments.
PAPER_COLOR_MODES = COLOR_MODES


@dataclass(frozen=True)
class TransformSpec:
    """One physical input representation.

    Parameters
    ----------
    resolution:
        Target square size in pixels.
    color_mode:
        One of ``rgb``, ``red``, ``green``, ``blue``, ``gray``.
    resize_mode:
        Interpolation used when resizing (``area``, ``bilinear``, ``nearest``).
    """

    resolution: int
    color_mode: str = "rgb"
    resize_mode: str = "area"

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.color_mode not in COLOR_MODES:
            raise ValueError(f"unknown color mode {self.color_mode!r}")

    # -- derived properties ------------------------------------------------
    @property
    def channels(self) -> int:
        """Number of channels in the produced representation."""
        return channels_for_mode(self.color_mode)

    @property
    def shape(self) -> tuple[int, int, int]:
        """HWC shape of the produced representation."""
        return (self.resolution, self.resolution, self.channels)

    @property
    def num_values(self) -> int:
        """Number of scalar input values (drives CNN input size and cost)."""
        return self.resolution * self.resolution * self.channels

    @property
    def name(self) -> str:
        """Stable human-readable identifier, e.g. ``60x60-gray``."""
        return f"{self.resolution}x{self.resolution}-{self.color_mode}"

    # -- application ---------------------------------------------------------
    def apply(self, image: np.ndarray) -> np.ndarray:
        # shape: (..., H, W, C) -> (..., R, R, C')
        """Transform one HWC image (or an NHWC batch) into this representation."""
        resized = resize(image, self.resolution, mode=self.resize_mode)
        return to_color_mode(resized, self.color_mode)

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, R, R, C')
        """Transform an NHWC batch; provided for readability at call sites."""
        if images.ndim != 4:
            raise ValueError(f"expected NHWC batch, got shape {images.shape}")
        return self.apply(images)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def standard_transform_grid(
        resolutions: tuple[int, ...] = PAPER_RESOLUTIONS,
        color_modes: tuple[str, ...] = PAPER_COLOR_MODES,
        resize_mode: str = "area") -> list[TransformSpec]:
    """The paper's grid: every resolution crossed with every color variant."""
    if not resolutions or not color_modes:
        raise ValueError("resolutions and color_modes must be non-empty")
    return [TransformSpec(resolution=r, color_mode=c, resize_mode=resize_mode)
            for r in resolutions for c in color_modes]


def transform_subsets(
        resolutions: tuple[int, ...] = PAPER_RESOLUTIONS,
        color_modes: tuple[str, ...] = PAPER_COLOR_MODES,
        resize_mode: str = "area") -> dict[str, list[TransformSpec]]:
    """The four transformation subsets of Figure 10.

    * ``none`` — only the full-resolution, full-color representation,
    * ``color`` — full resolution, all color variants,
    * ``resize`` — all resolutions, full color only,
    * ``full`` — the complete grid.
    """
    full_resolution = max(resolutions)
    return {
        "none": [TransformSpec(full_resolution, "rgb", resize_mode)],
        "color": [TransformSpec(full_resolution, mode, resize_mode)
                  for mode in color_modes],
        "resize": [TransformSpec(resolution, "rgb", resize_mode)
                   for resolution in resolutions],
        "full": standard_transform_grid(resolutions, color_modes, resize_mode),
    }
