"""Self-tests for the durability lint.

Same scratch-copy strategy as the lock-discipline self-tests: the real WAL
and checkpoint modules must lint clean, and surgically removing one fsync,
one directory fsync, or adding one write after a prune must each produce
exactly the matching finding.
"""

import shutil

import pytest

from repro.analysis.durability import check_durability
from repro.analysis.guards import DURABILITY_MODULES, SOURCE_ROOT


@pytest.fixture()
def scratch(tmp_path):
    root = tmp_path / "repro"
    for rel in DURABILITY_MODULES:
        (root / rel).parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SOURCE_ROOT / rel, root / rel)
    return root


def _edit(root, rel, old, new):
    path = root / rel
    source = path.read_text(encoding="utf-8")
    assert old in source, f"injection anchor not found in {rel}: {old!r}"
    path.write_text(source.replace(old, new, 1), encoding="utf-8")


def _rules(findings):
    return {finding.rule for finding in findings}


class TestCleanTree:
    def test_installed_tree_is_clean(self):
        assert check_durability() == []

    def test_scratch_copy_is_clean(self, scratch):
        assert check_durability(scratch) == []


class TestDetections:
    def test_removed_payload_fsync_detected(self, scratch):
        # The WAL's payload-before-line append: dropping the payload fsync
        # leaves the os.replace publishing potentially-unwritten bytes.
        _edit(scratch, "db/wal.py",
              "                handle.flush()\n"
              "                os.fsync(handle.fileno())\n"
              "            os.replace(tmp, final)",
              "                handle.flush()\n"
              "            os.replace(tmp, final)")
        findings = check_durability(scratch)
        assert _rules(findings) == {"fsync-before-rename"}
        (finding,) = findings
        assert finding.path == "db/wal.py"
        assert "_append_with_payload" in finding.message

    def test_removed_dirsync_detected(self, scratch):
        _edit(scratch, "db/wal.py",
              "            os.replace(tmp, final)\n"
              "            fsync_dir(self.directory)",
              "            os.replace(tmp, final)")
        findings = check_durability(scratch)
        assert _rules(findings) == {"dirsync-after-rename"}
        assert "directory fsync" in findings[0].message

    def test_write_after_prune_detected(self, scratch):
        _edit(scratch, "db/persistence.py",
              "    if include_corpus:\n"
              "        _prune_stale_images(root, tables)",
              "    if include_corpus:\n"
              "        _prune_stale_images(root, tables)\n"
              "        (root / \"late.json\").write_text(\"{}\")")
        findings = check_durability(scratch)
        assert _rules(findings) == {"write-after-prune"}
        assert finding_path(findings) == "db/persistence.py"

    def test_suppression_comment_honored(self, scratch):
        _edit(scratch, "db/wal.py",
              "                handle.flush()\n"
              "                os.fsync(handle.fileno())\n"
              "            os.replace(tmp, final)",
              "                handle.flush()\n"
              "            os.replace(tmp, final)"
              "  # durability ok: self-test fixture")
        assert check_durability(scratch) == []


def finding_path(findings):
    (finding,) = findings
    return finding.path
