"""Self-tests for the static lock-discipline checker.

The real tree must be clean; each detection test copies the analyzed
modules into a scratch package root, injects one specific violation, and
asserts the checker (pointed at the scratch root with ``--root``) reports
exactly that violation class.
"""

import shutil

import pytest

from repro.analysis.cli import main
from repro.analysis.guards import (CONFINED, DURABILITY_MODULES, REGISTRY,
                                   SOURCE_ROOT)
from repro.analysis.lockcheck import check_lock_discipline
from repro.analysis.shapes_spec import SHAPES

# Injection anchors in db/executor.py (the scratch copy is text-edited, so
# the anchors must match the real source — the asserts in _edit catch drift).
_LOCKED_REGION = ("with self._lock:\n"
                  "            return sorted({category for category, _ in "
                  "self._materialized})")
_UNLOCKED_REGION = ("if True:\n"
                    "            return sorted({category for category, _ in "
                    "self._materialized})")


@pytest.fixture()
def scratch(tmp_path):
    """A scratch package root holding copies of every analyzed module."""
    root = tmp_path / "repro"
    needed = {spec.path for spec in REGISTRY}
    needed.update(confined.path for confined in CONFINED)
    needed.update(DURABILITY_MODULES)
    # The CLI runs every pass over --root, so the scratch tree also needs
    # the shape-covered modules.
    needed.update(spec.path for spec in SHAPES)
    for rel in sorted(needed):
        (root / rel).parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SOURCE_ROOT / rel, root / rel)
    return root


def _edit(root, rel, old, new):
    path = root / rel
    source = path.read_text(encoding="utf-8")
    assert old in source, f"injection anchor not found in {rel}: {old!r}"
    path.write_text(source.replace(old, new, 1), encoding="utf-8")


def _rules(findings):
    return {finding.rule for finding in findings}


class TestCleanTree:
    def test_installed_tree_is_clean(self):
        assert check_lock_discipline() == []

    def test_scratch_copy_is_clean(self, scratch):
        assert check_lock_discipline(scratch) == []


class TestDetections:
    def test_unguarded_read_detected(self, scratch):
        _edit(scratch, "db/executor.py", _LOCKED_REGION, _UNLOCKED_REGION)
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"unguarded-read"}
        (finding,) = findings
        assert finding.path == "db/executor.py"
        assert "_materialized" in finding.message
        assert "materialized_categories" in finding.message

    def test_unguarded_write_detected(self, scratch):
        _edit(scratch, "db/executor.py",
              "    def materialized_categories",
              "    def _poke(self):\n"
              "        self._epoch += 1\n\n"
              "    def materialized_categories")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"unguarded-write"}
        assert "_epoch" in findings[0].message

    def test_mutator_call_counts_as_write(self, scratch):
        _edit(scratch, "db/executor.py",
              "    def materialized_categories",
              "    def _wipe(self):\n"
              "        self._materialized.clear()\n\n"
              "    def materialized_categories")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"unguarded-write"}

    def test_escape_of_guarded_mutable_detected(self, scratch):
        _edit(scratch, "db/executor.py",
              "    def materialized_categories",
              "    def _leak(self):\n"
              "        with self._lock:\n"
              "            return self._materialized\n\n"
              "    def materialized_categories")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"escape"}
        assert "_leak" in findings[0].message

    def test_closure_does_not_inherit_lock_region(self, scratch):
        _edit(scratch, "db/executor.py",
              "    def materialized_categories",
              "    def _deferred(self):\n"
              "        with self._lock:\n"
              "            def later():\n"
              "                return self._epoch\n"
              "            return later\n\n"
              "    def materialized_categories")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"unguarded-read"}

    def test_suppression_comment_honored(self, scratch):
        _edit(scratch, "db/executor.py", _LOCKED_REGION,
              _UNLOCKED_REGION + "  # unguarded ok: self-test fixture")
        assert check_lock_discipline(scratch) == []


class TestAnnotationCrossCheck:
    def test_wrong_lock_in_annotation_is_drift(self, scratch):
        _edit(scratch, "db/executor.py",
              "self._epoch = 0  # guarded by: self._lock",
              "self._epoch = 0  # guarded by: self._other_lock")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"annotation-drift"}
        assert "_epoch" in findings[0].message

    def test_annotation_without_manifest_entry_is_drift(self, scratch):
        _edit(scratch, "db/executor.py",
              "self.corpus = corpus",
              "self.corpus = corpus  # guarded by: self._lock")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"annotation-drift"}
        assert "missing from the guards.py manifest" in findings[0].message

    def test_manifest_entry_without_annotation_is_missing(self, scratch):
        _edit(scratch, "db/executor.py",
              "self._epoch = 0  # guarded by: self._lock",
              "self._epoch = 0")
        findings = check_lock_discipline(scratch)
        assert _rules(findings) == {"missing-annotation"}
        assert "QueryExecutor._epoch" in findings[0].message


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([]) == 0
        assert "analysis: clean" in capsys.readouterr().out

    def test_findings_exit_nonzero_with_locations(self, scratch, capsys):
        _edit(scratch, "db/executor.py", _LOCKED_REGION, _UNLOCKED_REGION)
        assert main(["--root", str(scratch)]) == 1
        out = capsys.readouterr().out
        assert "[unguarded-read]" in out
        assert "db/executor.py:" in out
        assert "1 finding(s)" in out

    def test_list_shows_coverage(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "QueryExecutor" in out
        assert "db/wal.py" in out
