"""Self-tests for the runtime concurrency sanitizer.

Deliberately inverted lock orders and deliberately unguarded writes must be
detected (with the offending stack attached); disciplined code must stay
clean.  The fixture is careful to compose with a suite-level ``--sanitize``
run: it restores the previous enabled state and drains the violations the
tests provoke on purpose, so the conftest's autouse check never sees them.
"""

import threading

import numpy as np
import pytest

from repro import locking
from repro.analysis import sanitizer
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db.executor import QueryExecutor
from tests.conftest import TINY_SIZE


@pytest.fixture()
def sanitized():
    """Sanitizer on, with clean state, leaving no trace for the next test."""
    was_enabled = sanitizer.enabled()
    sanitizer.reset()
    sanitizer.enable()
    yield
    sanitizer.take_violations()  # drain the violations provoked on purpose
    sanitizer.reset()
    if not was_enabled:
        sanitizer.disable()


def make_corpus():
    return generate_corpus((get_category("komondor"),), n_images=8,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(5), positive_rate=0.9)


class TestLockOrder:
    def test_inversion_detected_with_both_stacks(self, sanitized):
        alpha = locking.make_rlock("fixture:alpha")
        beta = locking.make_rlock("fixture:beta")
        with alpha:
            with beta:
                pass
        # The opposite order: even though this run cannot deadlock (it is
        # single-threaded), the edge graph proves two threads doing these
        # two sequences concurrently could.
        with beta:
            with alpha:
                pass
        violations = sanitizer.take_violations()
        assert len(violations) == 1
        (violation,) = violations
        assert violation.kind == "lock-order"
        assert "fixture:alpha" in violation.message
        assert "fixture:beta" in violation.message
        assert "test_sanitizer" in violation.stack
        assert "test_sanitizer" in violation.other_stack

    def test_transitive_inversion_detected(self, sanitized):
        a = locking.make_lock("fixture:a")
        b = locking.make_lock("fixture:b")
        c = locking.make_lock("fixture:c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:  # closes the cycle a -> b -> c -> a
                pass
        violations = sanitizer.take_violations()
        assert [v.kind for v in violations] == ["lock-order"]
        assert "fixture:a" in violations[0].message

    def test_consistent_order_is_clean(self, sanitized):
        outer = locking.make_rlock("fixture:outer")
        inner = locking.make_rlock("fixture:inner")
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert sanitizer.take_violations() == []

    def test_reentrant_reacquisition_adds_no_edge(self, sanitized):
        outer = locking.make_rlock("fixture:outer")
        inner = locking.make_rlock("fixture:inner")
        with outer:
            with inner:
                with outer:  # re-entry, not a new ordering fact
                    pass
        # If re-entry had added the edge inner -> outer, this consistent
        # second use would flag a bogus inversion.
        with outer:
            with inner:
                pass
        assert sanitizer.take_violations() == []

    def test_detection_works_across_threads(self, sanitized):
        first = locking.make_lock("fixture:first")
        second = locking.make_lock("fixture:second")

        def ordered():
            with first:
                with second:
                    pass

        thread = threading.Thread(target=ordered, name="sanitizer-fixture")
        thread.start()
        thread.join()
        with second:
            with first:
                pass
        assert [v.kind for v in sanitizer.take_violations()] == ["lock-order"]


class TestGuardedWrite:
    def test_unguarded_write_detected_with_stack(self, sanitized):
        executor = QueryExecutor(make_corpus())
        executor._epoch = 99  # the deliberate violation
        violations = sanitizer.take_violations()
        assert [v.kind for v in violations] == ["guarded-write"]
        (violation,) = violations
        assert "QueryExecutor._epoch" in violation.message
        assert "test_sanitizer" in violation.stack

    def test_locked_write_is_clean(self, sanitized):
        executor = QueryExecutor(make_corpus())
        with executor._lock:
            executor._epoch = 99
        assert sanitizer.take_violations() == []

    def test_construction_is_clean(self, sanitized):
        # __init__ takes the lock before binding guarded attributes; the
        # pre-lock writes (plain attributes) must not trip the assertion.
        QueryExecutor(make_corpus())
        assert sanitizer.take_violations() == []

    def test_plain_lock_instances_are_skipped(self, sanitized):
        # Objects built while the sanitizer was off carry plain locks; the
        # patched __setattr__ must not flag them (it cannot know).
        sanitizer.disable()
        executor = QueryExecutor(make_corpus())
        sanitizer.enable()
        executor._epoch = 99
        assert sanitizer.take_violations() == []
