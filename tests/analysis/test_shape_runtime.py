"""Tests for the runtime shape-contract checker behind ``pytest --shape-check``.

The wrapper must be invisible when contracts hold (same results, exceptions
propagate untouched) and must record a violation — never raise — when a
runtime shape or dtype contradicts the declared contract.
"""

import numpy as np
import pytest

from repro.analysis import shape_runtime
from repro.analysis.shapes_spec import SHAPES, ShapeSpec


@pytest.fixture()
def runtime():
    """Enable/disable around each test so wrapping never leaks.

    Under a global ``--shape-check`` run the checker is already enabled;
    suspend it so each test controls its own specs, and restore afterwards.
    """
    was_enabled = shape_runtime.is_enabled()
    if was_enabled:
        shape_runtime.disable()
    yield shape_runtime
    shape_runtime.disable()
    shape_runtime.take_violations()
    if was_enabled:
        shape_runtime.enable()


class TestCleanContracts:
    def test_enable_wraps_every_spec(self, runtime):
        assert runtime.enable() == len(SHAPES)

    def test_enable_is_idempotent(self, runtime):
        runtime.enable()
        assert runtime.enable() == 0

    def test_real_contracts_hold_on_layer_calls(self, runtime):
        runtime.enable()
        from repro.nn.layers import Conv2D, Dense, Flatten, ReLU

        x = np.random.default_rng(0).normal(size=(3, 8, 8, 3))
        out = Conv2D(3, 4, kernel_size=3, rng=np.random.default_rng(0)).forward(x)
        out = ReLU().forward(out)
        out = Flatten().forward(out)
        out = Dense(out.shape[1], 5, rng=np.random.default_rng(1)).forward(out)
        assert out.shape == (3, 5)
        assert runtime.take_violations() == []

    def test_disable_restores_originals(self, runtime):
        from repro.nn.layers import Flatten
        original = Flatten.__dict__["forward"]
        runtime.enable()
        assert Flatten.__dict__["forward"] is not original
        runtime.disable()
        assert Flatten.__dict__["forward"] is original


class TestViolations:
    def test_wrong_contract_records_violation(self, runtime):
        bad = (ShapeSpec("nn/layers.py", "Flatten.forward",
                         "(N, D) -> (N,)"),)
        runtime.enable(bad)
        from repro.nn.layers import Flatten
        out = Flatten().forward(np.ones((3, 2, 2, 1)))
        assert out.shape == (3, 4)  # the call itself is untouched
        violations = runtime.take_violations()
        assert violations
        assert any("rank" in str(v) for v in violations)
        assert all(v.qualname == "Flatten.forward" for v in violations)

    def test_take_violations_drains(self, runtime):
        bad = (ShapeSpec("nn/layers.py", "Flatten.forward",
                         "(N, D) -> (N,)"),)
        runtime.enable(bad)
        from repro.nn.layers import Flatten
        Flatten().forward(np.ones((3, 2, 2, 1)))
        assert runtime.take_violations()
        assert runtime.take_violations() == []

    def test_dtype_violation_recorded(self, runtime):
        bad = (ShapeSpec("nn/layers.py", "Flatten.forward",
                         "(N, ...) -> (N, D)", dtype="float32"),)
        runtime.enable(bad)
        from repro.nn.layers import Flatten
        Flatten().forward(np.ones((2, 2, 2, 1), dtype=np.float64))
        violations = runtime.take_violations()
        assert any("float64" in str(v) for v in violations)

    def test_symbol_unification_across_args_and_output(self, runtime):
        # (N, D) -> (N, K): N must match between input and output.  Dense
        # preserves the batch dim, so the real layer never violates; a spec
        # demanding the *same* symbol for rows and columns must.
        bad = (ShapeSpec("nn/layers.py", "Dense.forward",
                         "(N, N) -> (N, K)"),)
        runtime.enable(bad)
        from repro.nn.layers import Dense
        Dense(4, 2, rng=np.random.default_rng(0)).forward(np.ones((3, 4)))
        violations = runtime.take_violations()
        assert any("N" in str(v) for v in violations)


class TestExceptionTransparency:
    def test_exceptions_propagate_without_violation(self, runtime):
        runtime.enable()
        from repro.nn.layers import Dense
        with pytest.raises(ValueError):
            Dense(4, 2, rng=np.random.default_rng(0)).forward(np.ones((3, 7)))
        assert runtime.take_violations() == []
