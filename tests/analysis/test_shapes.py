"""Self-tests for the static shape/dtype abstract interpreter.

Same scheme as ``test_lockcheck.py``: the real tree must check clean, and
each detection test copies the covered modules into a scratch package root,
injects one specific violation class, and asserts the checker reports exactly
that class at a ``path:line`` location.
"""

import shutil

import pytest

from repro.analysis.cli import main
from repro.analysis.guards import CONFINED, DURABILITY_MODULES, REGISTRY
from repro.analysis.shapes import check_shapes
from repro.analysis.shapes_spec import (SHAPES, SOURCE_ROOT, Contract,
                                        ShapeSpec, parse_contract,
                                        parse_dtypes)


@pytest.fixture()
def scratch(tmp_path):
    """A scratch package root holding copies of every covered module.

    Lock/durability modules are included too so the CLI (which runs every
    pass over ``--root``) can analyze the scratch tree end to end.
    """
    root = tmp_path / "repro"
    needed = {spec.path for spec in SHAPES}
    needed.update(spec.path for spec in REGISTRY)
    needed.update(confined.path for confined in CONFINED)
    needed.update(DURABILITY_MODULES)
    for rel in sorted(needed):
        (root / rel).parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SOURCE_ROOT / rel, root / rel)
    return root


def _edit(root, rel, old, new):
    path = root / rel
    source = path.read_text(encoding="utf-8")
    assert old in source, f"injection anchor not found in {rel}: {old!r}"
    path.write_text(source.replace(old, new, 1), encoding="utf-8")


def _rules(findings):
    return {finding.rule for finding in findings}


class TestContractGrammar:
    def test_round_trip(self):
        contract = parse_contract("(N, H, W, C) -> (N, H', W', K)")
        assert isinstance(contract, Contract)
        assert len(contract.inputs) == 1
        assert contract.inputs[0] == ("N", "H", "W", "C")
        assert contract.output == ("N", "H'", "W'", "K")

    def test_scalar_and_ellipsis(self):
        contract = parse_contract("(N, ...), (...) -> ()")
        assert contract.inputs[0] == ("N", Ellipsis)
        assert contract.inputs[1] == (Ellipsis,)
        assert contract.output == ()

    def test_no_inputs(self):
        contract = parse_contract("-> (S,)")
        assert contract.inputs == ()
        assert contract.output == ("S",)

    def test_dtype_alternatives(self):
        assert parse_dtypes("float32|float64") == {"float32", "float64"}

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            parse_dtypes("float63")

    def test_malformed_contract_rejected(self):
        with pytest.raises(ValueError):
            parse_contract("(N, H W) -> (N,)")


class TestCleanTree:
    def test_installed_tree_is_clean(self):
        assert check_shapes() == []

    def test_scratch_copy_is_clean(self, scratch):
        assert check_shapes(scratch) == []


class TestBatchDimLoss:
    def test_bare_squeeze_detected(self, scratch):
        _edit(scratch, "nn/network.py", "        return flat\n",
              "        return flat.squeeze()\n")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"batch-dim-loss"}
        (finding,) = findings
        assert finding.path == "nn/network.py"
        assert "Sequential.predict_proba" in finding.message
        assert "0-d" in finding.message

    def test_suppression_comment_honored(self, scratch):
        _edit(scratch, "nn/network.py", "        return flat\n",
              "        return flat.squeeze()  # shape ok: self-test fixture\n")
        assert check_shapes(scratch) == []


class TestContractMismatch:
    def test_full_reduction_where_contract_keeps_batch(self, scratch):
        _edit(scratch, "nn/layers.py", "return x.mean(axis=(1, 2))",
              "return x.mean()")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"contract-mismatch"}
        (finding,) = findings
        assert "GlobalAveragePool.forward" in finding.message
        assert "rank 0" in finding.message
        assert "(N, C)" in finding.message

    def test_wrong_axis_count_detected(self, scratch):
        # GAP reducing only one spatial axis returns rank 3, not (N, C).
        _edit(scratch, "nn/layers.py", "return x.mean(axis=(1, 2))",
              "return x.mean(axis=1)")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"contract-mismatch"}


class TestDtypeWidening:
    def _float32_specs(self):
        return tuple(
            ShapeSpec(s.path, s.qualname, s.shape, dtype="float32",
                      args=s.args, tuple_index=s.tuple_index, hot=s.hot)
            if s.qualname == "ReLU.forward" else s for s in SHAPES)

    def test_float64_creation_crosses_float32_boundary(self, scratch):
        _edit(scratch, "nn/layers.py", "        mask = x > 0",
              "        x = x.astype(np.float64)\n        mask = x > 0")
        _edit(scratch, "nn/layers.py",
              "        # shape: (N, ...) -> (N, ...)\n        # The output",
              "        # shape: (N, ...) -> (N, ...)\n"
              "        # dtype: float32\n        # The output")
        findings = check_shapes(scratch, specs=self._float32_specs())
        # The widening itself is flagged, and the interpreter independently
        # notices the widened dtype reaching the return.
        assert _rules(findings) == {"dtype-widening", "contract-mismatch"}
        widening = [f for f in findings if f.rule == "dtype-widening"]
        assert "float32 boundary" in widening[0].message


class TestAnnotationCrossCheck:
    def test_annotation_differs_from_manifest_is_drift(self, scratch):
        _edit(scratch, "nn/layers.py", "# shape: (N, ...) -> (N, D)",
              "# shape: (N, ...) -> (N, E)")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"contract-drift"}
        assert "Flatten.forward" in findings[0].message

    def test_annotation_without_manifest_entry_is_drift(self, scratch):
        _edit(scratch, "nn/im2col.py",
              "def conv_output_size(size: int, kernel: int, stride: int, "
              "pad: int) -> int:\n",
              "def conv_output_size(size: int, kernel: int, stride: int, "
              "pad: int) -> int:\n    # shape: (N,) -> (N,)\n")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"contract-drift"}
        assert "missing from the shapes_spec.py manifest" in findings[0].message

    def test_manifest_entry_without_annotation_is_missing(self, scratch):
        _edit(scratch, "nn/layers.py",
              "        # shape: (N, ...) -> (N, D)\n", "")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"missing-contract"}
        assert "Flatten.forward" in findings[0].message


class TestSilentCopyInLoop:
    def test_concatenate_in_hot_loop_detected(self, scratch):
        _edit(scratch, "nn/network.py",
              """        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start:start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)""",
              """        out = None
        for start in range(0, x.shape[0], batch_size):
            chunk = self.forward(x[start:start + batch_size], training=False)
            out = chunk if out is None else np.concatenate([out, chunk], axis=0)
        return out""")
        findings = check_shapes(scratch)
        assert _rules(findings) == {"silent-copy-in-loop"}
        assert "Sequential.predict" in findings[0].message
        assert "np.concatenate" in findings[0].message


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "analysis: clean" in out
        assert f"{len(SHAPES)} shape contracts" in out

    def test_shape_findings_exit_nonzero_with_locations(self, scratch, capsys):
        _edit(scratch, "nn/network.py", "        return flat\n",
              "        return flat.squeeze()\n")
        assert main(["--root", str(scratch)]) == 1
        out = capsys.readouterr().out
        assert "[batch-dim-loss]" in out
        assert "nn/network.py:" in out
        assert "1 finding(s)" in out

    def test_list_shows_shape_coverage(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert f"shapes: ({len(SHAPES)} contracts)" in out
        assert "Conv2D.forward" in out
        assert "'(N, H, W, C) -> (N, H', W', K)'" in out
