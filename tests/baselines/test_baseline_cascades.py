"""Tests for the paper's Baseline cascade set."""

import pytest

from repro.baselines.baseline_cascades import (
    baseline_model_specs,
    build_baseline_cascades,
    is_full_representation,
)
from repro.core.spec import ArchitectureSpec
from repro.transforms.spec import TransformSpec
from tests.conftest import TINY_SIZE


def test_is_full_representation():
    assert is_full_representation(TransformSpec(32, "rgb"), 32)
    assert not is_full_representation(TransformSpec(16, "rgb"), 32)
    assert not is_full_representation(TransformSpec(32, "gray"), 32)


def test_baseline_model_specs_use_full_input_only():
    architectures = [ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)]
    specs = baseline_model_specs(architectures, source_resolution=32)
    assert len(specs) == 2
    assert all(spec.transform.resolution == 32 for spec in specs)
    assert all(spec.transform.color_mode == "rgb" for spec in specs)


def test_baseline_model_specs_skip_too_deep_architectures():
    specs = baseline_model_specs([ArchitectureSpec(4, 8, 16)], source_resolution=8)
    assert specs == []


def test_baseline_model_specs_require_architectures():
    with pytest.raises(ValueError):
        baseline_model_specs([], 32)


def test_build_baseline_cascades_shape(tiny_optimizer, tiny_reference):
    cascades = build_baseline_cascades(tiny_optimizer.models,
                                       tiny_optimizer.thresholds,
                                       tiny_reference, TINY_SIZE)
    assert cascades, "expected at least the reference-only cascade"
    # Every baseline cascade terminates in the reference classifier.
    assert all(cascade.ends_in_reference() for cascade in cascades)
    # Non-final levels consume only the full-size full-color representation.
    for cascade in cascades:
        for level in cascade.levels[:-1]:
            assert is_full_representation(level.model.transform, TINY_SIZE)
    # The set is a strict subset of TAHOMA's design space.
    assert len(cascades) < tiny_optimizer.n_cascades


def test_build_baseline_cascades_requires_full_input_models(tiny_optimizer,
                                                            tiny_reference):
    small_only = [model for model in tiny_optimizer.models
                  if model.transform.resolution < TINY_SIZE]
    with pytest.raises(ValueError):
        build_baseline_cascades(small_only, tiny_optimizer.thresholds,
                                tiny_reference, TINY_SIZE)
