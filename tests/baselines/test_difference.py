"""Tests for the frame-difference detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.difference import DifferenceDetector, FramePlan


def make_static_stream(n=20, size=16, noise=0.0, rng=None):
    rng = rng or np.random.default_rng(0)
    base = rng.random((size, size, 3))
    frames = np.stack([np.clip(base + rng.normal(0, noise, base.shape), 0, 1)
                       for _ in range(n)])
    return frames


class TestFramePlan:
    def test_counts(self):
        plan = FramePlan(processed=np.array([0, 3]),
                         reuse_from=np.array([-1, 0, 0, -1, 3]))
        assert plan.n_frames == 5
        assert plan.n_processed == 2
        assert plan.n_reused == 3
        assert plan.reuse_fraction == pytest.approx(0.6)

    def test_expand_labels(self):
        plan = FramePlan(processed=np.array([0, 3]),
                         reuse_from=np.array([-1, 0, 0, -1, 3]))
        labels = plan.expand_labels(np.array([1, 0]))
        np.testing.assert_array_equal(labels, [1, 1, 1, 0, 0])

    def test_expand_labels_length_check(self):
        plan = FramePlan(processed=np.array([0]), reuse_from=np.array([-1, 0]))
        with pytest.raises(ValueError):
            plan.expand_labels(np.array([1, 0, 1]))


class TestDifferenceDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            DifferenceDetector(threshold=-1.0)
        with pytest.raises(ValueError):
            DifferenceDetector(downsample=0)

    def test_static_stream_is_mostly_reused(self):
        frames = make_static_stream(noise=0.0)
        plan = DifferenceDetector(threshold=1e-6).plan(frames)
        assert plan.n_processed == 1
        assert plan.reuse_fraction == pytest.approx(19 / 20)

    def test_noisy_stream_is_processed(self):
        rng = np.random.default_rng(1)
        frames = rng.random((10, 16, 16, 3))
        plan = DifferenceDetector(threshold=1e-6).plan(frames)
        assert plan.n_processed == 10

    def test_first_frame_always_processed(self):
        frames = make_static_stream(5)
        plan = DifferenceDetector(threshold=1e9).plan(frames)
        assert 0 in plan.processed

    def test_empty_stream(self):
        plan = DifferenceDetector().plan(np.zeros((0, 8, 8, 3)))
        assert plan.n_frames == 0
        assert plan.n_processed == 0

    def test_plan_rejects_single_frame_shape(self):
        with pytest.raises(ValueError):
            DifferenceDetector().plan(np.zeros((8, 8, 3)))

    def test_calibrate_hits_target_reuse(self):
        rng = np.random.default_rng(2)
        frames = make_static_stream(60, noise=0.02, rng=rng)
        detector = DifferenceDetector()
        detector.calibrate(frames, target_reuse=0.5)
        plan = detector.plan(frames)
        assert 0.2 <= plan.reuse_fraction <= 0.8

    def test_frame_distance_symmetry(self):
        rng = np.random.default_rng(3)
        a, b = rng.random((8, 8, 3)), rng.random((8, 8, 3))
        detector = DifferenceDetector()
        assert detector.frame_distance(a, b) == pytest.approx(
            detector.frame_distance(b, a))
        assert detector.frame_distance(a, a) == 0.0

    def test_values_touched_scales_with_downsample(self):
        fine = DifferenceDetector(downsample=1).values_touched((32, 32, 3))
        coarse = DifferenceDetector(downsample=4).values_touched((32, 32, 3))
        assert fine == 32 * 32 * 3
        assert coarse == 8 * 8 * 3


@settings(max_examples=20, deadline=None)
@given(threshold=st.floats(0.0, 0.5), seed=st.integers(0, 100))
def test_plan_invariants(threshold, seed):
    """Every frame is either processed or reuses an earlier processed frame."""
    rng = np.random.default_rng(seed)
    frames = make_static_stream(15, noise=0.05, rng=rng)
    plan = DifferenceDetector(threshold=threshold).plan(frames)
    processed_set = set(plan.processed.tolist())
    for index in range(plan.n_frames):
        source = plan.reuse_from[index]
        if source == -1:
            assert index in processed_set
        else:
            assert source in processed_set
            assert source < index
    assert plan.n_processed + plan.n_reused == plan.n_frames
