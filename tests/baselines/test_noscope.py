"""Tests for the NoScope pipeline and TAHOMA+DD."""

import numpy as np
import pytest

from repro.baselines.difference import DifferenceDetector
from repro.baselines.noscope import NoScopePipeline, TahomaWithDifferenceDetector
from repro.core.cascade import Cascade, CascadeLevel
from repro.core.model import TrainedModel
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.thresholds import DecisionThresholds
from repro.costs.device import DeviceProfile
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import INFER_ONLY
from repro.transforms.spec import TransformSpec

DEVICE = DeviceProfile("test", flops_per_second=1e9,
                       transform_seconds_per_value=1e-8,
                       inference_overhead_s=1e-5)
PROFILER = CostProfiler(DEVICE, INFER_ONLY, source_resolution=16)


def make_model(name, resolution=16, mode="rgb", kind="specialized", seed=0):
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(resolution, mode))
    network = spec.build(rng=np.random.default_rng(seed))
    return TrainedModel(name=name, network=network, transform=spec.transform,
                        architecture=spec.architecture, kind=kind)


@pytest.fixture(scope="module")
def frames_and_labels():
    rng = np.random.default_rng(0)
    base = rng.random((16, 16, 3))
    frames, labels = [], []
    for index in range(30):
        frame = base + rng.normal(0, 0.01, base.shape)
        labels.append(index % 3 == 0)
        frames.append(np.clip(frame, 0, 1))
    return np.stack(frames), np.array(labels, dtype=np.int64)


@pytest.fixture(scope="module")
def specialized():
    return make_model("specialized", seed=1)


@pytest.fixture(scope="module")
def oracle():
    return make_model("oracle", kind="reference", seed=2)


class TestNoScopePipeline:
    def test_rejects_reference_as_specialized(self, oracle):
        with pytest.raises(ValueError):
            NoScopePipeline(specialized=oracle,
                            thresholds=DecisionThresholds(0.3, 0.7, 0.95),
                            oracle=oracle)

    def test_run_produces_labels_and_counts(self, frames_and_labels, specialized,
                                            oracle):
        frames, labels = frames_and_labels
        pipeline = NoScopePipeline(specialized,
                                   DecisionThresholds(0.3, 0.7, 0.95), oracle,
                                   detector=DifferenceDetector(threshold=1e-5))
        result = pipeline.run(frames, labels, PROFILER)
        assert result.labels.shape == labels.shape
        assert result.n_frames == 30
        assert result.n_reused + result.n_specialized == 30
        assert result.n_oracle <= result.n_specialized
        assert 0.0 <= result.accuracy <= 1.0
        assert result.throughput > 0

    def test_mismatched_lengths_raise(self, frames_and_labels, specialized, oracle):
        frames, labels = frames_and_labels
        pipeline = NoScopePipeline(specialized,
                                   DecisionThresholds(0.3, 0.7, 0.95), oracle)
        with pytest.raises(ValueError):
            pipeline.run(frames, labels[:-1], PROFILER)

    def test_tight_thresholds_send_everything_to_oracle(self, frames_and_labels,
                                                        specialized, oracle):
        frames, labels = frames_and_labels
        pipeline = NoScopePipeline(specialized,
                                   DecisionThresholds(0.0, 1.0, 0.95), oracle,
                                   detector=DifferenceDetector(threshold=0.0))
        result = pipeline.run(frames, labels, PROFILER)
        assert result.oracle_fraction > 0.9

    def test_oracle_usage_increases_cost(self, frames_and_labels, specialized,
                                         oracle):
        frames, labels = frames_and_labels
        detector = DifferenceDetector(threshold=0.0)
        cheap = NoScopePipeline(specialized, DecisionThresholds(0.5, 0.5, 0.95),
                                oracle, detector=detector)
        expensive = NoScopePipeline(specialized, DecisionThresholds(0.0, 1.0, 0.95),
                                    oracle, detector=detector)
        assert (expensive.run(frames, labels, PROFILER).cost.total_s
                > cheap.run(frames, labels, PROFILER).cost.total_s)


class TestTahomaWithDifferenceDetector:
    def test_run_matches_cascade_labels_on_processed_frames(self, frames_and_labels,
                                                            specialized, oracle):
        frames, labels = frames_and_labels
        cascade = Cascade((CascadeLevel(specialized,
                                        DecisionThresholds(0.3, 0.7, 0.95)),
                           CascadeLevel(oracle, None)))
        runner = TahomaWithDifferenceDetector(
            cascade, detector=DifferenceDetector(threshold=0.0))
        result = runner.run(frames, labels, PROFILER)
        # With a zero threshold nothing is reused, so the labels must match a
        # plain cascade execution.
        np.testing.assert_array_equal(result.labels, cascade.classify(frames))
        assert result.n_reused == 0

    def test_reuse_reduces_specialized_count(self, frames_and_labels, specialized,
                                             oracle):
        frames, labels = frames_and_labels
        cascade = Cascade((CascadeLevel(specialized, None),))
        eager = TahomaWithDifferenceDetector(
            cascade, detector=DifferenceDetector(threshold=0.0))
        lazy = TahomaWithDifferenceDetector(
            cascade, detector=DifferenceDetector(threshold=1e-2))
        assert (lazy.run(frames, labels, PROFILER).n_specialized
                < eager.run(frames, labels, PROFILER).n_specialized)

    def test_small_cascade_is_faster_than_noscope_with_same_oracle(
            self, frames_and_labels, oracle):
        """The Figure 8 effect: a tiny-representation cascade beats the
        full-input NoScope pipeline when both avoid the oracle."""
        frames, labels = frames_and_labels
        small = make_model("small", resolution=8, mode="gray", seed=3)
        full = make_model("full", resolution=16, mode="rgb", seed=4)
        detector = DifferenceDetector(threshold=0.0)
        tahoma = TahomaWithDifferenceDetector(
            Cascade((CascadeLevel(small, None),)), detector=detector)
        noscope = NoScopePipeline(full, DecisionThresholds(0.5, 0.5, 0.95),
                                  oracle, detector=detector)
        tahoma_result = tahoma.run(frames, labels, PROFILER)
        noscope_result = noscope.run(frames, labels, PROFILER)
        assert tahoma_result.throughput > noscope_result.throughput
