"""Tests for the reference deep classifier (ResNet50 stand-in)."""

import numpy as np
import pytest

from repro.baselines.reference import (
    build_reference_network,
    reference_transform,
    train_reference_model,
)
from repro.nn.flops import count_network_flops


def test_reference_transform_is_full_color():
    spec = reference_transform(32)
    assert spec.resolution == 32
    assert spec.color_mode == "rgb"


def test_build_network_output_shape():
    net = build_reference_network((16, 16, 3), base_width=8, n_stages=2,
                                  blocks_per_stage=1)
    out = net.forward(np.random.default_rng(0).random((2, 16, 16, 3)))
    assert out.shape == (2, 1)
    assert np.all((out >= 0) & (out <= 1))


def test_build_network_rejects_too_small_input():
    with pytest.raises(ValueError):
        build_reference_network((4, 4, 3), n_stages=3)


def test_build_network_invalid_stage_counts():
    with pytest.raises(ValueError):
        build_reference_network((16, 16, 3), n_stages=0)


def test_reference_is_much_more_expensive_than_small_models():
    """The property the speedup experiments rely on: a large FLOP gap."""
    from repro.core.spec import ArchitectureSpec

    reference = build_reference_network((16, 16, 3), base_width=8, n_stages=2,
                                        blocks_per_stage=1)
    small = ArchitectureSpec(1, 4, 8).build((8, 8, 1))
    reference_flops = count_network_flops(reference, (16, 16, 3))
    small_flops = count_network_flops(small, (8, 8, 1))
    assert reference_flops > 20 * small_flops


def test_trained_reference_properties(tiny_reference, tiny_splits):
    assert tiny_reference.is_reference
    assert tiny_reference.transform.color_mode == "rgb"
    assert tiny_reference.flops > 0
    predictions = tiny_reference.predict(tiny_splits.eval.images)
    accuracy = float((predictions == tiny_splits.eval.labels).mean())
    assert accuracy > 0.5


def test_trained_reference_is_most_accurate_on_training_data(tiny_reference):
    assert tiny_reference.train_accuracy > 0.6
