"""Shared fixtures for the test suite.

Training even tiny NumPy CNNs takes a noticeable fraction of a second, so the
expensive objects (rendered datasets, trained model pools, an initialized
optimizer, the smoke-scale experiment workspace) are built once per session
and shared by all tests that need them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.reference import train_reference_model
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.spec import ArchitectureSpec
from repro.core.trainer import TrainingConfig
from repro.costs.device import SERVER_GPU, calibrate_device
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import CAMERA, INFER_ONLY
from repro.data.categories import get_category
from repro.data.corpus import build_predicate_splits
from repro.transforms.spec import TransformSpec

#: Image size used by the tiny training fixtures.
TINY_SIZE = 16


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_splits():
    """Small train/config/eval splits for the komondor predicate."""
    generator = np.random.default_rng(7)
    return build_predicate_splits(get_category("komondor"), n_train=48,
                                  n_config=32, n_eval=32, image_size=TINY_SIZE,
                                  rng=generator)


@pytest.fixture(scope="session")
def tiny_config() -> TahomaConfig:
    """A reduced TAHOMA configuration used across core tests."""
    return TahomaConfig(
        architectures=(ArchitectureSpec(1, 4, 8), ArchitectureSpec(2, 4, 8)),
        transforms=(TransformSpec(8, "rgb"), TransformSpec(8, "gray"),
                    TransformSpec(16, "rgb"), TransformSpec(16, "gray")),
        precision_targets=(0.9, 0.95),
        max_depth=2,
        training=TrainingConfig(epochs=2, batch_size=16, augment=True))


@pytest.fixture(scope="session")
def tiny_reference(tiny_splits):
    """A small reference (ResNet50 stand-in) classifier."""
    generator = np.random.default_rng(11)
    return train_reference_model(tiny_splits, resolution=TINY_SIZE, epochs=6,
                                 learning_rate=0.005, base_width=8, n_stages=2,
                                 blocks_per_stage=1, rng=generator)


@pytest.fixture(scope="session")
def tiny_optimizer(tiny_splits, tiny_config, tiny_reference) -> TahomaOptimizer:
    """A fully initialized optimizer shared by core/baseline/query tests."""
    optimizer = TahomaOptimizer(tiny_config)
    optimizer.initialize(tiny_splits, reference_model=tiny_reference,
                         rng=np.random.default_rng(13))
    return optimizer


@pytest.fixture(scope="session")
def tiny_device(tiny_reference):
    """A device calibrated so the tiny reference model lands near 75 fps."""
    return calibrate_device(SERVER_GPU, tiny_reference.flops, target_fps=75.0)


@pytest.fixture(scope="session")
def infer_only_profiler(tiny_device) -> CostProfiler:
    return CostProfiler(tiny_device, INFER_ONLY, source_resolution=TINY_SIZE,
                        cost_resolution=224)


@pytest.fixture(scope="session")
def camera_profiler(tiny_device) -> CostProfiler:
    return CostProfiler(tiny_device, CAMERA, source_resolution=TINY_SIZE,
                        cost_resolution=224)


@pytest.fixture(scope="session")
def smoke_workspace():
    """The smoke-scale experiment workspace (built once for all experiment tests)."""
    from repro.experiments.presets import SMOKE_SCALE
    from repro.experiments.workspace import get_workspace

    return get_workspace(SMOKE_SCALE)
