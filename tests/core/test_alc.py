"""Tests for the area-left-of-curve comparison metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alc import (
    area_left_of_curve,
    average_throughput,
    shared_accuracy_range,
    speedup,
)


FRONTIER = [(0.95, 100.0), (0.9, 500.0), (0.8, 2000.0)]


class TestAreaLeftOfCurve:
    def test_constant_throughput(self):
        points = [(0.8, 100.0), (0.9, 100.0)]
        area = area_left_of_curve(points, (0.8, 0.9))
        assert area == pytest.approx(0.1 * 100.0, rel=1e-3)

    def test_step_function_uses_best_available(self):
        area = area_left_of_curve(FRONTIER, (0.8, 0.9))
        # Between 0.8 and 0.9 the best throughput at accuracy >= a transitions
        # from 2000 (at 0.8) to 500 (above 0.8).
        assert 0.1 * 500 <= area <= 0.1 * 2000

    def test_zero_above_max_accuracy(self):
        area = area_left_of_curve(FRONTIER, (0.99, 1.0))
        assert area == pytest.approx(0.0, abs=1e-9)

    def test_empty_points_raise(self):
        with pytest.raises(ValueError):
            area_left_of_curve([], (0.0, 1.0))

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            area_left_of_curve(FRONTIER, (0.9, 0.8))


class TestAverageThroughput:
    def test_degenerate_range(self):
        value = average_throughput(FRONTIER, (0.9, 0.9))
        assert value == pytest.approx(500.0)

    def test_average_between_bounds(self):
        value = average_throughput(FRONTIER, (0.8, 0.95))
        assert 100.0 <= value <= 2000.0

    def test_better_frontier_has_higher_average(self):
        better = [(a, t * 3) for a, t in FRONTIER]
        assert (average_throughput(better, (0.8, 0.95))
                > average_throughput(FRONTIER, (0.8, 0.95)))


class TestSpeedup:
    def test_speedup_of_scaled_frontier(self):
        better = [(a, t * 4) for a, t in FRONTIER]
        assert speedup(better, FRONTIER, (0.8, 0.95)) == pytest.approx(4.0, rel=1e-6)

    def test_speedup_of_identical_sets_is_one(self):
        assert speedup(FRONTIER, FRONTIER, (0.8, 0.95)) == pytest.approx(1.0)

    def test_zero_baseline_raises(self):
        # The baseline never reaches accuracies in (0.995, 1.0), so its area
        # over that range is zero and the ratio is undefined.
        with pytest.raises(ZeroDivisionError):
            speedup(FRONTIER, [(0.99, 10.0)], (0.995, 1.0))


class TestSharedAccuracyRange:
    def test_takes_tightest_range(self):
        a = [(0.7, 1.0), (0.95, 1.0)]
        b = [(0.8, 1.0), (0.9, 1.0)]
        assert shared_accuracy_range(a, b) == (0.8, 0.9)

    def test_disjoint_ranges_collapse(self):
        a = [(0.1, 1.0), (0.2, 1.0)]
        b = [(0.8, 1.0), (0.9, 1.0)]
        low, high = shared_accuracy_range(a, b)
        assert low == high

    def test_requires_point_sets(self):
        with pytest.raises(ValueError):
            shared_accuracy_range()
        with pytest.raises(ValueError):
            shared_accuracy_range([])


@settings(max_examples=40, deadline=None)
@given(scale=st.floats(1.1, 10.0),
       points=st.lists(st.tuples(st.floats(0.5, 1.0), st.floats(1.0, 1e4)),
                       min_size=2, max_size=30))
def test_scaling_throughput_scales_alc(scale, points):
    accuracies = [p[0] for p in points]
    accuracy_range = (min(accuracies), max(accuracies))
    if accuracy_range[0] == accuracy_range[1]:
        return
    base = area_left_of_curve(points, accuracy_range)
    scaled = area_left_of_curve([(a, t * scale) for a, t in points], accuracy_range)
    assert scaled == pytest.approx(base * scale, rel=1e-6)
