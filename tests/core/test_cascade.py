"""Tests for cascades and cascade enumeration."""

import numpy as np
import pytest

from repro.core.cascade import Cascade, CascadeBuilder, CascadeLevel, count_cascades
from repro.core.model import TrainedModel
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.thresholds import DecisionThresholds
from repro.storage.store import RepresentationStore
from repro.transforms.spec import TransformSpec


def make_model(name, resolution=8, mode="gray", kind="specialized", seed=0):
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(resolution, mode))
    network = spec.build(rng=np.random.default_rng(seed))
    return TrainedModel(name=name, network=network, transform=spec.transform,
                        architecture=spec.architecture, kind=kind)


@pytest.fixture
def models():
    return [make_model("m1", 8, "gray", seed=1),
            make_model("m2", 8, "rgb", seed=2),
            make_model("m3", 16, "gray", seed=3)]


@pytest.fixture
def thresholds(models):
    return {model.name: [DecisionThresholds(0.3, 0.7, 0.95),
                         DecisionThresholds(0.2, 0.8, 0.99)]
            for model in models}


@pytest.fixture
def reference():
    return make_model("reference", 16, "rgb", kind="reference", seed=9)


class TestCascadeStructure:
    def test_depth_and_name(self, models, thresholds):
        cascade = Cascade((
            CascadeLevel(models[0], thresholds["m1"][0]),
            CascadeLevel(models[1], None)))
        assert cascade.depth == 2
        assert "m1" in cascade.name and "m2" in cascade.name

    def test_final_level_must_not_have_thresholds(self, models, thresholds):
        with pytest.raises(ValueError):
            Cascade((CascadeLevel(models[0], thresholds["m1"][0]),))

    def test_intermediate_levels_need_thresholds(self, models):
        with pytest.raises(ValueError):
            Cascade((CascadeLevel(models[0], None), CascadeLevel(models[1], None)))

    def test_empty_cascade_rejected(self):
        with pytest.raises(ValueError):
            Cascade(())

    def test_ends_in_reference(self, models, thresholds, reference):
        cascade = Cascade((CascadeLevel(models[0], thresholds["m1"][0]),
                           CascadeLevel(reference, None)))
        assert cascade.ends_in_reference()


class TestCascadeExecution:
    def test_classify_returns_binary_labels(self, models, thresholds):
        cascade = Cascade((CascadeLevel(models[0], thresholds["m1"][0]),
                           CascadeLevel(models[2], None)))
        images = np.random.default_rng(0).random((10, 16, 16, 3))
        labels = cascade.classify(images)
        assert labels.shape == (10,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_stats_account_for_every_image(self, models, thresholds):
        cascade = Cascade((CascadeLevel(models[0], thresholds["m1"][0]),
                           CascadeLevel(models[2], None)))
        images = np.random.default_rng(1).random((20, 16, 16, 3))
        _, stats = cascade.classify_with_stats(images)
        assert stats["evaluated"][0] == 20
        assert stats["decided"].sum() == 20
        assert stats["evaluated"][1] == 20 - stats["decided"][0]

    def test_single_level_cascade_decides_everything(self, models):
        cascade = Cascade((CascadeLevel(models[0], None),))
        images = np.random.default_rng(2).random((7, 16, 16, 3))
        _, stats = cascade.classify_with_stats(images)
        assert stats["decided"][0] == 7

    def test_wide_thresholds_send_everything_downstream(self, models):
        all_uncertain = DecisionThresholds(0.0, 1.0, 0.95)
        cascade = Cascade((CascadeLevel(models[0], all_uncertain),
                           CascadeLevel(models[2], None)))
        images = np.random.default_rng(3).random((5, 16, 16, 3))
        probs = models[0].predict_proba(images)
        _, stats = cascade.classify_with_stats(images)
        # Only probabilities exactly 0 or 1 can be decided at level one.
        expected_downstream = int(((probs > 0.0) & (probs < 1.0)).sum())
        assert stats["evaluated"][1] == expected_downstream

    def test_shared_store_reuses_representations(self, models, thresholds):
        cascade = Cascade((CascadeLevel(models[0], thresholds["m1"][0]),
                           CascadeLevel(models[2], None)))
        store = RepresentationStore()
        images = np.random.default_rng(4).random((6, 16, 16, 3))
        cascade.classify(images, store=store)
        assert len(store) == 2  # one per distinct representation

    def test_rejects_non_batch_input(self, models):
        cascade = Cascade((CascadeLevel(models[0], None),))
        with pytest.raises(ValueError):
            cascade.classify(np.zeros((16, 16, 3)))


class TestCascadeBuilder:
    def test_build_counts_match_formula(self, models, thresholds, reference):
        builder = CascadeBuilder(thresholds, max_depth=2, reference_model=reference)
        cascades = builder.build(models, include_reference_tail=True)
        expected = count_cascades(n_models=3, n_precision_targets=2, max_depth=2,
                                  with_reference_tail=True)
        assert len(cascades) == expected

    def test_build_without_reference(self, models, thresholds):
        builder = CascadeBuilder(thresholds, max_depth=2)
        cascades = builder.build(models, include_reference_tail=False)
        expected = count_cascades(3, 2, 2, with_reference_tail=False)
        assert len(cascades) == expected
        assert all(not cascade.ends_in_reference() for cascade in cascades)

    def test_depth_one_is_just_models(self, models, thresholds):
        builder = CascadeBuilder(thresholds, max_depth=1)
        cascades = builder.build(models, include_reference_tail=False)
        assert len(cascades) == 3
        assert all(cascade.depth == 1 for cascade in cascades)

    def test_models_never_repeat_within_a_cascade(self, models, thresholds, reference):
        builder = CascadeBuilder(thresholds, max_depth=2, reference_model=reference)
        for cascade in builder.build(models):
            names = [level.model.name for level in cascade.levels]
            assert len(names) == len(set(names))

    def test_missing_thresholds_raise(self, models, reference):
        builder = CascadeBuilder({}, max_depth=2, reference_model=reference)
        with pytest.raises(KeyError):
            builder.build(models)

    def test_empty_model_pool_raises(self, thresholds):
        builder = CascadeBuilder(thresholds, max_depth=1)
        with pytest.raises(ValueError):
            builder.build([])

    def test_count_cascades_validation(self):
        with pytest.raises(ValueError):
            count_cascades(0, 1, 1, False)

    def test_paper_scale_count_is_about_1_3_million(self):
        """Order-of-magnitude check against the paper's 1,301,405 cascades."""
        total = count_cascades(n_models=360, n_precision_targets=5, max_depth=2,
                               with_reference_tail=False)
        assert 6.0e5 < total < 7.0e5  # one- and two-level cascades
