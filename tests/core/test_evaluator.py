"""Tests for the cached-prediction cascade evaluator."""

import numpy as np
import pytest

from repro.core.cascade import Cascade, CascadeBuilder, CascadeLevel
from repro.core.evaluator import (
    ModelPredictionCache,
    evaluate_cascade,
    evaluate_cascades,
)
from repro.core.model import TrainedModel
from repro.core.pareto import is_dominated
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.thresholds import DecisionThresholds
from repro.costs.device import DeviceProfile
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import ARCHIVE, INFER_ONLY
from repro.transforms.spec import TransformSpec

DEVICE = DeviceProfile("test", flops_per_second=1e9,
                       transform_seconds_per_value=1e-8,
                       inference_overhead_s=1e-5)


def make_model(name, resolution=8, mode="gray", seed=0):
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(resolution, mode))
    network = spec.build(rng=np.random.default_rng(seed))
    return TrainedModel(name=name, network=network, transform=spec.transform,
                        architecture=spec.architecture)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    models = [make_model("a", 8, "gray", 1), make_model("b", 8, "rgb", 2),
              make_model("c", 16, "gray", 3)]
    images = rng.random((40, 16, 16, 3))
    labels = rng.integers(0, 2, 40)
    cache = ModelPredictionCache.from_models(models, images, labels)
    thresholds = {m.name: [DecisionThresholds(0.3, 0.7, 0.95)] for m in models}
    profiler = CostProfiler(DEVICE, INFER_ONLY, source_resolution=16)
    return models, images, labels, cache, thresholds, profiler


class TestModelPredictionCache:
    def test_contains_all_models(self, setup):
        models, _, _, cache, _, _ = setup
        assert len(cache) == 3
        assert all(model in cache for model in models)

    def test_cached_probs_match_direct_prediction(self, setup):
        models, images, _, cache, _, _ = setup
        direct = models[0].predict_proba(images)
        np.testing.assert_allclose(cache.get(models[0]), direct)

    def test_missing_model_raises(self, setup):
        _, _, _, cache, _, _ = setup
        with pytest.raises(KeyError):
            cache.get(make_model("unknown"))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ModelPredictionCache({"m": np.zeros(3)}, np.zeros(4))


class TestEvaluateCascade:
    def test_simulated_accuracy_matches_real_execution(self, setup):
        """The core soundness check: simulation == actually running the cascade."""
        models, images, labels, cache, thresholds, profiler = setup
        cascade = Cascade((CascadeLevel(models[0], thresholds["a"][0]),
                           CascadeLevel(models[2], None)))
        evaluation = evaluate_cascade(cascade, cache, profiler)
        executed = cascade.classify(images)
        real_accuracy = float((executed == labels).mean())
        assert evaluation.accuracy == pytest.approx(real_accuracy)

    def test_level_fractions_monotone_nonincreasing(self, setup):
        models, _, _, cache, thresholds, profiler = setup
        cascade = Cascade((CascadeLevel(models[0], thresholds["a"][0]),
                           CascadeLevel(models[1], thresholds["b"][0]),
                           CascadeLevel(models[2], None)))
        evaluation = evaluate_cascade(cascade, cache, profiler)
        fractions = evaluation.level_fractions
        assert fractions[0] == 1.0
        assert all(fractions[i] >= fractions[i + 1]
                   for i in range(len(fractions) - 1))

    def test_cascade_cost_at_most_sum_of_models(self, setup):
        models, _, _, cache, thresholds, profiler = setup
        cascade = Cascade((CascadeLevel(models[0], thresholds["a"][0]),
                           CascadeLevel(models[2], None)))
        evaluation = evaluate_cascade(cascade, cache, profiler)
        full_cost = (profiler.model_cost(models[0].flops, models[0].transform).total_s
                     + profiler.model_cost(models[2].flops, models[2].transform).total_s)
        assert evaluation.cost.total_s <= full_cost + 1e-12

    def test_shared_representation_charged_once(self, setup):
        """Two levels sharing one representation pay its handling cost once."""
        models, _, _, cache, thresholds, _ = setup
        profiler = CostProfiler(DEVICE, ARCHIVE, source_resolution=16)
        shared = Cascade((CascadeLevel(models[0], thresholds["a"][0]),
                          CascadeLevel(make_model("a2", 8, "gray", 5), None)))
        cache2 = ModelPredictionCache.from_models(
            list(shared.models), np.random.default_rng(1).random((20, 16, 16, 3)),
            np.random.default_rng(1).integers(0, 2, 20))
        evaluation = evaluate_cascade(shared, cache2, profiler)
        single_handling = profiler.data_handling_cost(models[0].transform).total_s
        handling_paid = evaluation.cost.load_s + evaluation.cost.transform_s
        assert handling_paid <= single_handling + 1e-12

    def test_empty_labels_raise(self, setup):
        models, _, _, _, thresholds, profiler = setup
        cascade = Cascade((CascadeLevel(models[0], None),))
        empty_cache = ModelPredictionCache({models[0].name: np.zeros(0)}, np.zeros(0))
        with pytest.raises(ValueError):
            evaluate_cascade(cascade, empty_cache, profiler)


class TestEvaluatedCascadeSet:
    def test_frontier_points_are_nondominated(self, setup):
        models, _, _, cache, thresholds, profiler = setup
        builder = CascadeBuilder(thresholds, max_depth=2)
        cascades = builder.build(models, include_reference_tail=False)
        evaluated = evaluate_cascades(cascades, cache, profiler)
        points = evaluated.points()
        for evaluation in evaluated.frontier():
            others = [p for p in points if p != evaluation.point()]
            assert not is_dominated(evaluation.point(), others) \
                or evaluation.point() in others

    def test_best_and_fastest(self, setup):
        models, _, _, cache, thresholds, profiler = setup
        builder = CascadeBuilder(thresholds, max_depth=2)
        evaluated = evaluate_cascades(builder.build(models, False), cache, profiler)
        best = evaluated.best_accuracy()
        fastest = evaluated.fastest()
        assert best.accuracy == max(e.accuracy for e in evaluated.evaluations)
        assert fastest.throughput == max(e.throughput for e in evaluated.evaluations)

    def test_accuracy_range_ordering(self, setup):
        models, _, _, cache, thresholds, profiler = setup
        builder = CascadeBuilder(thresholds, max_depth=1)
        evaluated = evaluate_cascades(builder.build(models, False), cache, profiler)
        low, high = evaluated.accuracy_range()
        assert low <= high

    def test_empty_cascade_list_raises(self, setup):
        _, _, _, cache, _, profiler = setup
        with pytest.raises(ValueError):
            evaluate_cascades([], cache, profiler)
