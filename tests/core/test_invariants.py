"""Cross-module property tests on the optimizer's core invariants.

These use randomly generated (accuracy, cost) populations rather than trained
models, so hypothesis can explore the space broadly and cheaply.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alc import average_throughput, shared_accuracy_range
from repro.core.cascade import Cascade, CascadeLevel
from repro.core.evaluator import CascadeEvaluation, EvaluatedCascadeSet
from repro.core.model import TrainedModel
from repro.core.selector import UserConstraints, select_cascade, select_most_accurate
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.costs.profiler import CostBreakdown
from repro.transforms.spec import TransformSpec

# One shared dummy cascade keeps evaluation objects cheap to create.
_SPEC = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
_MODEL = TrainedModel(name="dummy", network=_SPEC.build(),
                      transform=_SPEC.transform, architecture=_SPEC.architecture)
_CASCADE = Cascade((CascadeLevel(_MODEL, None),))


def make_evaluation(accuracy: float, total_seconds: float) -> CascadeEvaluation:
    return CascadeEvaluation(cascade=_CASCADE, accuracy=accuracy,
                             cost=CostBreakdown(infer_s=total_seconds),
                             level_fractions=(1.0,))


populations = st.lists(
    st.tuples(st.floats(0.5, 1.0), st.floats(1e-5, 1e-1)),
    min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(population=populations,
       loss=st.one_of(st.none(), st.floats(0.0, 0.5)))
def test_selected_cascade_is_on_the_frontier(population, loss):
    """Whatever the constraint, the selection is Pareto-optimal."""
    evaluations = [make_evaluation(a, s) for a, s in population]
    evaluated = EvaluatedCascadeSet(evaluations)
    frontier = evaluated.frontier()
    chosen = select_cascade(frontier, UserConstraints(max_accuracy_loss=loss))
    assert chosen in frontier


@settings(max_examples=60, deadline=None)
@given(population=populations, loss=st.floats(0.0, 0.5))
def test_selection_respects_relative_accuracy_budget(population, loss):
    evaluations = [make_evaluation(a, s) for a, s in population]
    best = select_most_accurate(evaluations)
    chosen = select_cascade(evaluations, UserConstraints(max_accuracy_loss=loss))
    assert chosen.accuracy >= best.accuracy * (1.0 - loss) - 1e-12


@settings(max_examples=60, deadline=None)
@given(population=populations,
       small_loss=st.floats(0.0, 0.2), extra=st.floats(0.0, 0.3))
def test_larger_budget_never_reduces_throughput(population, small_loss, extra):
    """Loosening the accuracy constraint can only speed the query up."""
    evaluations = [make_evaluation(a, s) for a, s in population]
    tight = select_cascade(evaluations, UserConstraints(max_accuracy_loss=small_loss))
    loose = select_cascade(evaluations,
                           UserConstraints(max_accuracy_loss=small_loss + extra))
    assert loose.throughput >= tight.throughput - 1e-9


@settings(max_examples=40, deadline=None)
@given(population=populations)
def test_frontier_average_throughput_bounded_by_extremes(population):
    evaluations = [make_evaluation(a, s) for a, s in population]
    evaluated = EvaluatedCascadeSet(evaluations)
    points = evaluated.frontier_points()
    accuracy_range = shared_accuracy_range(points)
    value = average_throughput(points, accuracy_range)
    throughputs = [t for _, t in points]
    assert value <= max(throughputs) + 1e-9
    assert value >= 0.0


@settings(max_examples=40, deadline=None)
@given(population=populations)
def test_frontier_is_sorted_and_tradeoff_consistent(population):
    """Along the frontier, higher throughput never comes with higher accuracy."""
    evaluations = [make_evaluation(a, s) for a, s in population]
    frontier = EvaluatedCascadeSet(evaluations).frontier()
    throughputs = [e.throughput for e in frontier]
    accuracies = [e.accuracy for e in frontier]
    assert throughputs == sorted(throughputs, reverse=True)
    assert accuracies == sorted(accuracies)


def test_evaluated_set_requires_evaluations():
    with pytest.raises(ValueError):
        EvaluatedCascadeSet([])


def test_cost_breakdown_throughput_is_reciprocal():
    evaluation = make_evaluation(0.9, 0.01)
    assert evaluation.throughput == pytest.approx(100.0)
    assert evaluation.point() == (0.9, pytest.approx(100.0))
