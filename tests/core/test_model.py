"""Tests for TrainedModel."""

import numpy as np
import pytest

from repro.core.model import TrainedModel
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.transforms.spec import TransformSpec


@pytest.fixture
def model():
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    network = spec.build(rng=np.random.default_rng(0))
    return TrainedModel(name=spec.name, network=network, transform=spec.transform,
                        architecture=spec.architecture)


def test_flops_computed_automatically(model):
    assert model.flops > 0


def test_kind_validation():
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    network = spec.build()
    with pytest.raises(ValueError):
        TrainedModel(name="x", network=network, transform=spec.transform,
                     kind="huge")


def test_predict_proba_applies_transform(model):
    raw = np.random.default_rng(1).random((5, 16, 16, 3))
    probs = model.predict_proba(raw)
    assert probs.shape == (5,)
    assert np.all((probs >= 0) & (probs <= 1))


def test_predict_proba_transformed_checks_shape(model):
    good = np.random.default_rng(2).random((4, 8, 8, 1))
    assert model.predict_proba_transformed(good).shape == (4,)
    with pytest.raises(ValueError):
        model.predict_proba_transformed(np.zeros((4, 8, 8, 3)))


def test_predict_hard_labels(model):
    raw = np.random.default_rng(3).random((6, 16, 16, 3))
    labels = model.predict(raw)
    assert set(np.unique(labels)) <= {0, 1}


def test_transform_and_raw_paths_agree(model):
    raw = np.random.default_rng(4).random((3, 16, 16, 3))
    direct = model.predict_proba(raw)
    via_representation = model.predict_proba_transformed(
        model.transform.apply_batch(raw))
    np.testing.assert_allclose(direct, via_representation)


def test_is_reference_flag(model):
    assert not model.is_reference
    reference = TrainedModel(name="ref", network=model.network,
                             transform=model.transform, kind="reference")
    assert reference.is_reference
