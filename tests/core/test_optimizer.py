"""Tests for the end-to-end TAHOMA optimizer."""

import numpy as np
import pytest

from repro.core.cascade import count_cascades
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.core.spec import ArchitectureSpec
from repro.transforms.spec import TransformSpec


class TestTahomaConfig:
    def test_defaults_match_paper_design_space(self):
        config = TahomaConfig()
        assert len(config.architectures) == 18
        assert len(config.transforms) == 20
        assert len(config.model_specs()) == 360
        assert config.precision_targets == (0.91, 0.93, 0.95, 0.97, 0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            TahomaConfig(architectures=())
        with pytest.raises(ValueError):
            TahomaConfig(precision_targets=())
        with pytest.raises(ValueError):
            TahomaConfig(max_depth=0)


class TestInitializedOptimizer:
    def test_model_pool_size(self, tiny_optimizer, tiny_config):
        assert tiny_optimizer.n_models == len(tiny_config.model_specs())

    def test_cascade_count_matches_formula(self, tiny_optimizer, tiny_config):
        expected = count_cascades(
            n_models=tiny_optimizer.n_models,
            n_precision_targets=len(tiny_config.precision_targets),
            max_depth=tiny_config.max_depth,
            with_reference_tail=True)
        assert tiny_optimizer.n_cascades == expected

    def test_thresholds_calibrated_for_every_model(self, tiny_optimizer, tiny_config):
        for model in tiny_optimizer.models:
            calibrations = tiny_optimizer.thresholds[model.name]
            assert len(calibrations) == len(tiny_config.precision_targets)

    def test_reference_model_in_cache(self, tiny_optimizer, tiny_reference):
        assert tiny_reference in tiny_optimizer.cache

    def test_evaluate_returns_all_cascades(self, tiny_optimizer, infer_only_profiler):
        evaluated = tiny_optimizer.evaluate(infer_only_profiler)
        assert len(evaluated) == tiny_optimizer.n_cascades

    def test_frontier_subset_of_evaluations(self, tiny_optimizer, infer_only_profiler):
        frontier = tiny_optimizer.frontier(infer_only_profiler)
        assert 0 < len(frontier) <= tiny_optimizer.n_cascades

    def test_select_respects_accuracy_budget(self, tiny_optimizer, camera_profiler):
        frontier = tiny_optimizer.frontier(camera_profiler)
        best_accuracy = max(e.accuracy for e in frontier)
        chosen = tiny_optimizer.select(camera_profiler,
                                       UserConstraints(max_accuracy_loss=0.1))
        assert chosen.accuracy >= best_accuracy * 0.9 - 1e-12

    def test_select_without_constraints_keeps_best_accuracy(self, tiny_optimizer,
                                                            camera_profiler):
        frontier = tiny_optimizer.frontier(camera_profiler)
        chosen = tiny_optimizer.select(camera_profiler)
        assert chosen.accuracy == max(e.accuracy for e in frontier)

    def test_query_executes_selected_cascade(self, tiny_optimizer, tiny_splits,
                                             infer_only_profiler):
        chosen = tiny_optimizer.select(infer_only_profiler,
                                       UserConstraints(max_accuracy_loss=0.05))
        labels = tiny_optimizer.query(tiny_splits.eval.images[:10], chosen)
        assert labels.shape == (10,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_selected_cascade_is_reasonably_accurate(self, tiny_optimizer,
                                                     tiny_splits,
                                                     infer_only_profiler):
        chosen = tiny_optimizer.select(infer_only_profiler)
        labels = tiny_optimizer.query(tiny_splits.eval.images, chosen)
        accuracy = float((labels == tiny_splits.eval.labels).mean())
        # The simulation-selected accuracy was measured on the same eval set,
        # so actually running the cascade must reproduce it.
        assert accuracy == pytest.approx(chosen.accuracy)


class TestUninitializedOptimizer:
    def test_evaluate_before_initialize_raises(self, infer_only_profiler):
        optimizer = TahomaOptimizer(TahomaConfig(
            architectures=(ArchitectureSpec(1, 4, 8),),
            transforms=(TransformSpec(8, "gray"),)))
        with pytest.raises(RuntimeError):
            optimizer.evaluate(infer_only_profiler)

    def test_initialize_with_models_requires_models(self, tiny_splits):
        optimizer = TahomaOptimizer(TahomaConfig(
            architectures=(ArchitectureSpec(1, 4, 8),),
            transforms=(TransformSpec(8, "gray"),)))
        with pytest.raises(ValueError):
            optimizer.initialize_with_models([], tiny_splits)


class TestInitializeWithModels:
    def test_reuses_existing_pool(self, tiny_optimizer, tiny_splits, tiny_reference,
                                  tiny_config):
        subset = tiny_optimizer.models[:3]
        optimizer = TahomaOptimizer(tiny_config)
        optimizer.initialize_with_models(subset, tiny_splits,
                                         reference_model=tiny_reference)
        assert optimizer.n_models == 3
        assert optimizer.n_cascades > 0
