"""Tests for Pareto-frontier computation (including property-based tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import is_dominated, pareto_frontier, pareto_frontier_indices


class TestParetoFrontier:
    def test_simple_case(self):
        points = [(0.9, 100.0), (0.8, 200.0), (0.95, 50.0), (0.7, 150.0)]
        frontier = pareto_frontier(points)
        assert (0.7, 150.0) not in frontier  # dominated by (0.8, 200)
        assert set(frontier) == {(0.8, 200.0), (0.9, 100.0), (0.95, 50.0)}

    def test_single_point(self):
        assert pareto_frontier([(0.5, 10.0)]) == [(0.5, 10.0)]

    def test_empty(self):
        assert pareto_frontier([]) == []
        assert pareto_frontier_indices(np.array([]), np.array([])).size == 0

    def test_duplicate_points_keep_one(self):
        frontier = pareto_frontier([(0.9, 100.0), (0.9, 100.0)])
        assert frontier == [(0.9, 100.0)]

    def test_all_dominated_by_one(self):
        points = [(1.0, 1000.0), (0.5, 500.0), (0.2, 100.0)]
        assert pareto_frontier(points) == [(1.0, 1000.0)]

    def test_indices_sorted_by_descending_throughput(self):
        accuracy = np.array([0.9, 0.8, 0.95])
        throughput = np.array([100.0, 200.0, 50.0])
        indices = pareto_frontier_indices(accuracy, throughput)
        assert list(throughput[indices]) == sorted(throughput[indices], reverse=True)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pareto_frontier_indices(np.array([1.0]), np.array([1.0, 2.0]))


class TestIsDominated:
    def test_strict_domination(self):
        assert is_dominated((0.5, 50.0), [(0.6, 60.0)])

    def test_equal_point_does_not_dominate(self):
        assert not is_dominated((0.5, 50.0), [(0.5, 50.0)])

    def test_partial_improvement_dominates(self):
        assert is_dominated((0.5, 50.0), [(0.5, 51.0)])

    def test_tradeoff_does_not_dominate(self):
        assert not is_dominated((0.5, 50.0), [(0.6, 40.0)])


points_strategy = st.lists(
    st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1e4)),
    min_size=1, max_size=60)


@settings(max_examples=60, deadline=None)
@given(points=points_strategy)
def test_frontier_points_are_not_dominated(points):
    frontier = pareto_frontier(points)
    for point in frontier:
        others = [p for p in points if p != point]
        assert not is_dominated(point, others) or point in others


@settings(max_examples=60, deadline=None)
@given(points=points_strategy)
def test_every_non_frontier_point_is_dominated(points):
    frontier = pareto_frontier(points)
    frontier_set = set(frontier)
    for point in points:
        if point not in frontier_set:
            assert is_dominated(point, frontier)


@settings(max_examples=60, deadline=None)
@given(points=points_strategy)
def test_frontier_is_subset_and_nonempty(points):
    frontier = pareto_frontier(points)
    assert frontier
    assert set(frontier) <= set(points)


@settings(max_examples=30, deadline=None)
@given(points=points_strategy, data=st.data())
def test_frontier_invariant_under_permutation(points, data):
    permutation = data.draw(st.permutations(points))
    assert set(pareto_frontier(points)) == set(pareto_frontier(list(permutation)))
