"""Tests for the model-repository persistence layer."""

import numpy as np
import pytest

from repro.core.persistence import load_optimizer, save_optimizer
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import CAMERA


REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}


@pytest.fixture(scope="module")
def saved_root(tmp_path_factory, tiny_optimizer):
    root = tmp_path_factory.mktemp("repository")
    save_optimizer(tiny_optimizer, root, reference_params=REFERENCE_PARAMS)
    return root


def test_save_creates_manifest_and_weights(saved_root, tiny_optimizer):
    assert (saved_root / "repository.json").exists()
    weight_files = list((saved_root / "weights").glob("*.npz"))
    # One archive per specialized model plus one for the reference classifier.
    assert len(weight_files) == tiny_optimizer.n_models + 1


def test_save_requires_initialized_optimizer(tmp_path):
    from repro.core.optimizer import TahomaConfig, TahomaOptimizer
    from repro.core.spec import ArchitectureSpec
    from repro.transforms.spec import TransformSpec

    optimizer = TahomaOptimizer(TahomaConfig(
        architectures=(ArchitectureSpec(1, 4, 8),),
        transforms=(TransformSpec(8, "gray"),)))
    with pytest.raises(ValueError):
        save_optimizer(optimizer, tmp_path)


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_optimizer(tmp_path / "does-not-exist")


def test_round_trip_preserves_structure(saved_root, tiny_optimizer):
    restored = load_optimizer(saved_root)
    assert restored.n_models == tiny_optimizer.n_models
    assert restored.n_cascades == tiny_optimizer.n_cascades
    assert set(restored.thresholds) == set(tiny_optimizer.thresholds)
    assert restored.reference_model is not None
    assert restored.reference_model.is_reference


def test_round_trip_preserves_predictions(saved_root, tiny_optimizer, tiny_splits):
    restored = load_optimizer(saved_root)
    original_model = tiny_optimizer.models[0]
    restored_model = next(m for m in restored.models
                          if m.name == original_model.name)
    images = tiny_splits.eval.images[:8]
    np.testing.assert_allclose(restored_model.predict_proba(images),
                               original_model.predict_proba(images),
                               atol=1e-10)


def test_round_trip_preserves_cached_probabilities(saved_root, tiny_optimizer):
    restored = load_optimizer(saved_root)
    for name, probs in tiny_optimizer.cache.probabilities.items():
        np.testing.assert_allclose(restored.cache.probabilities[name], probs,
                                   atol=1e-12)
    np.testing.assert_array_equal(restored.cache.labels,
                                  tiny_optimizer.cache.labels)


def test_restored_optimizer_selects_equivalent_cascade(saved_root, tiny_optimizer,
                                                       tiny_device):
    restored = load_optimizer(saved_root)
    profiler = CostProfiler(tiny_device, CAMERA, source_resolution=16,
                            cost_resolution=224)
    original_choice = tiny_optimizer.select(profiler)
    restored_choice = restored.select(profiler)
    assert restored_choice.accuracy == pytest.approx(original_choice.accuracy)
    assert restored_choice.throughput == pytest.approx(original_choice.throughput,
                                                       rel=1e-6)
