"""Tests for cascade selection against user constraints."""

import pytest

from repro.core.cascade import Cascade, CascadeLevel
from repro.core.evaluator import CascadeEvaluation
from repro.core.model import TrainedModel
from repro.core.selector import (
    UserConstraints,
    select_cascade,
    select_fastest,
    select_matching_accuracy,
    select_most_accurate,
)
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.costs.profiler import CostBreakdown
from repro.transforms.spec import TransformSpec

import numpy as np


def make_evaluation(accuracy, throughput, name="m"):
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    model = TrainedModel(name=name, network=spec.build(rng=np.random.default_rng(0)),
                         transform=spec.transform)
    cascade = Cascade((CascadeLevel(model, None),))
    return CascadeEvaluation(cascade=cascade, accuracy=accuracy,
                             cost=CostBreakdown(infer_s=1.0 / throughput),
                             level_fractions=(1.0,))


@pytest.fixture
def evaluations():
    return [make_evaluation(0.95, 100.0, "slow-accurate"),
            make_evaluation(0.90, 1000.0, "balanced"),
            make_evaluation(0.80, 5000.0, "fast-sloppy")]


class TestUserConstraints:
    def test_validation(self):
        with pytest.raises(ValueError):
            UserConstraints(max_accuracy_loss=1.5)
        with pytest.raises(ValueError):
            UserConstraints(min_throughput=-1.0)

    def test_defaults_allow_no_loss(self):
        assert UserConstraints().max_accuracy_loss is None


class TestSelectors:
    def test_most_accurate(self, evaluations):
        assert select_most_accurate(evaluations).accuracy == 0.95

    def test_fastest(self, evaluations):
        assert select_fastest(evaluations).throughput == 5000.0

    def test_fastest_with_floor(self, evaluations):
        chosen = select_fastest(evaluations, min_accuracy=0.85)
        assert chosen.accuracy == 0.90

    def test_fastest_unreachable_floor_raises(self, evaluations):
        with pytest.raises(ValueError):
            select_fastest(evaluations, min_accuracy=0.99)

    def test_matching_accuracy_picks_nearest_higher(self, evaluations):
        chosen = select_matching_accuracy(evaluations, target_accuracy=0.85)
        assert chosen.accuracy == 0.90

    def test_matching_accuracy_falls_back_to_best(self, evaluations):
        chosen = select_matching_accuracy(evaluations, target_accuracy=0.99)
        assert chosen.accuracy == 0.95

    def test_empty_lists_raise(self):
        with pytest.raises(ValueError):
            select_most_accurate([])
        with pytest.raises(ValueError):
            select_fastest([])
        with pytest.raises(ValueError):
            select_matching_accuracy([], 0.5)
        with pytest.raises(ValueError):
            select_cascade([], UserConstraints())


class TestSelectCascade:
    def test_no_loss_budget_keeps_best_accuracy(self, evaluations):
        chosen = select_cascade(evaluations, UserConstraints())
        assert chosen.accuracy == 0.95

    def test_loss_budget_trades_for_throughput(self, evaluations):
        # 10% relative loss from 0.95 allows accuracy down to 0.855.
        chosen = select_cascade(evaluations,
                                UserConstraints(max_accuracy_loss=0.10))
        assert chosen.accuracy == 0.90
        assert chosen.throughput == 1000.0

    def test_large_budget_takes_fastest(self, evaluations):
        chosen = select_cascade(evaluations,
                                UserConstraints(max_accuracy_loss=0.5))
        assert chosen.throughput == 5000.0

    def test_throughput_floor_filters(self, evaluations):
        chosen = select_cascade(evaluations,
                                UserConstraints(max_accuracy_loss=0.10,
                                                min_throughput=900.0))
        assert chosen.throughput >= 900.0

    def test_unreachable_floor_falls_back_gracefully(self, evaluations):
        chosen = select_cascade(evaluations,
                                UserConstraints(max_accuracy_loss=0.0,
                                                min_throughput=10_000.0))
        assert chosen.accuracy == 0.95
