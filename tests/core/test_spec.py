"""Tests for architecture and model specifications."""

import numpy as np
import pytest

from repro.core.spec import (
    ArchitectureSpec,
    ModelSpec,
    build_model_grid,
    standard_architecture_grid,
)
from repro.transforms.spec import TransformSpec


class TestArchitectureSpec:
    def test_name(self):
        assert ArchitectureSpec(2, 16, 32).name == "c2f16d32"

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(0, 16, 32)
        with pytest.raises(ValueError):
            ArchitectureSpec(1, 0, 32)

    def test_fits_input(self):
        spec = ArchitectureSpec(4, 16, 32)
        assert spec.fits_input(30)
        assert not spec.fits_input(8)
        assert spec.min_input_resolution() == 16

    def test_build_network_shape(self):
        spec = ArchitectureSpec(2, 8, 16)
        net = spec.build((16, 16, 3), rng=np.random.default_rng(0))
        out = net.forward(np.random.default_rng(1).random((3, 16, 16, 3)))
        assert out.shape == (3, 1)
        assert np.all((out >= 0) & (out <= 1))

    def test_build_rejects_small_input(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(4, 8, 16).build((8, 8, 3))

    def test_build_rejects_non_square(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(1, 8, 16).build((8, 16, 3))

    def test_deeper_architectures_have_more_layers(self):
        shallow = ArchitectureSpec(1, 8, 16).build((16, 16, 3))
        deep = ArchitectureSpec(2, 8, 16).build((16, 16, 3))
        assert len(deep.layers) > len(shallow.layers)

    def test_paper_grid_size(self):
        assert len(standard_architecture_grid()) == 18

    def test_grid_rejects_empty(self):
        with pytest.raises(ValueError):
            standard_architecture_grid(conv_layers=())


class TestModelSpec:
    def test_name_combines_components(self):
        spec = ModelSpec(ArchitectureSpec(1, 16, 32), TransformSpec(30, "gray"))
        assert spec.name == "c1f16d32-30x30-gray"

    def test_validity(self):
        valid = ModelSpec(ArchitectureSpec(2, 8, 16), TransformSpec(16, "rgb"))
        invalid = ModelSpec(ArchitectureSpec(4, 8, 16), TransformSpec(8, "rgb"))
        assert valid.is_valid()
        assert not invalid.is_valid()

    def test_build_uses_transform_shape(self):
        spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
        net = spec.build(rng=np.random.default_rng(0))
        assert net.input_shape == (8, 8, 1)


class TestModelGrid:
    def test_paper_design_space_size(self):
        """The paper's full grid: 18 architectures x 20 transforms = 360 models."""
        grid = build_model_grid(standard_architecture_grid(),
                                list(__import__("repro.transforms.spec",
                                                fromlist=["standard_transform_grid"]
                                                ).standard_transform_grid()))
        assert len(grid) == 360

    def test_skips_invalid_combinations(self):
        architectures = [ArchitectureSpec(4, 8, 16)]
        transforms = [TransformSpec(8, "rgb"), TransformSpec(16, "rgb")]
        grid = build_model_grid(architectures, transforms)
        assert len(grid) == 1
        assert grid[0].transform.resolution == 16

    def test_strict_mode_raises_on_invalid(self):
        with pytest.raises(ValueError):
            build_model_grid([ArchitectureSpec(4, 8, 16)],
                             [TransformSpec(8, "rgb")], skip_invalid=False)

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            build_model_grid([], [TransformSpec(8)])

    def test_names_unique(self):
        grid = build_model_grid(standard_architecture_grid((1, 2), (8,), (16,)),
                                [TransformSpec(16, "rgb"), TransformSpec(16, "gray")])
        assert len({spec.name for spec in grid}) == len(grid)
