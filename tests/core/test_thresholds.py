"""Tests for decision-threshold calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thresholds import (
    PAPER_PRECISION_TARGETS,
    DecisionThresholds,
    calibrate_thresholds,
)


class TestDecisionThresholds:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionThresholds(0.8, 0.2, 0.95)
        with pytest.raises(ValueError):
            DecisionThresholds(0.1, 0.9, 0.0)

    def test_confident_mask(self):
        thresholds = DecisionThresholds(0.2, 0.8, 0.95)
        probs = np.array([0.1, 0.2, 0.5, 0.8, 0.95])
        np.testing.assert_array_equal(
            thresholds.confident_mask(probs), [True, True, False, True, True])

    def test_decide(self):
        thresholds = DecisionThresholds(0.2, 0.8, 0.95)
        np.testing.assert_array_equal(
            thresholds.decide(np.array([0.1, 0.9])), [0, 1])

    def test_degenerate_thresholds_decide_everything(self):
        thresholds = DecisionThresholds(0.5, 0.5, 0.95)
        assert thresholds.confident_mask(np.array([0.3, 0.5, 0.7])).all()


class TestCalibration:
    def test_well_separated_model_gets_full_coverage(self):
        probs = np.concatenate([np.full(50, 0.05), np.full(50, 0.95)])
        labels = np.concatenate([np.zeros(50), np.ones(50)])
        calibration = calibrate_thresholds(probs, labels, precision_target=0.95)
        assert calibration.feasible
        assert calibration.coverage == pytest.approx(1.0)

    def test_precision_constraint_met_on_calibration_data(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 400)
        noise = rng.normal(0, 0.2, 400)
        probs = np.clip(0.5 + (labels - 0.5) * 0.6 + noise, 0, 1)
        calibration = calibrate_thresholds(probs, labels, precision_target=0.9)
        thresholds = calibration.thresholds
        if calibration.feasible:
            confident_pos = probs >= thresholds.p_high
            confident_neg = probs <= thresholds.p_low
            if confident_pos.any():
                assert labels[confident_pos].mean() >= 0.9 - 1e-9
            if confident_neg.any():
                assert (1 - labels[confident_neg]).mean() >= 0.9 - 1e-9

    def test_uninformative_model_falls_back(self):
        """A model whose output is unrelated to the labels cannot be calibrated."""
        rng = np.random.default_rng(1)
        probs = np.full(200, 0.5)
        labels = rng.integers(0, 2, 200)
        calibration = calibrate_thresholds(probs, labels, precision_target=0.99)
        assert not calibration.feasible
        assert calibration.thresholds.p_low == calibration.thresholds.p_high == 0.5

    def test_noisy_uninformative_model_has_tiny_coverage(self):
        """Near-constant outputs can only ever decide a sliver of examples."""
        rng = np.random.default_rng(1)
        probs = np.full(200, 0.5) + rng.normal(0, 0.01, 200)
        labels = rng.integers(0, 2, 200)
        calibration = calibrate_thresholds(probs, labels, precision_target=0.99)
        assert calibration.coverage < 0.2

    def test_higher_targets_never_increase_coverage(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 500)
        probs = np.clip(labels * 0.7 + rng.normal(0.15, 0.2, 500), 0, 1)
        coverages = []
        for target in (0.9, 0.95, 0.99):
            coverages.append(calibrate_thresholds(probs, labels, target).coverage)
        assert coverages[0] >= coverages[1] >= coverages[2]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            calibrate_thresholds(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            calibrate_thresholds(np.array([0.5]), np.array([1, 0]))
        with pytest.raises(ValueError):
            calibrate_thresholds(np.array([0.5]), np.array([1]), precision_target=0.0)
        with pytest.raises(ValueError):
            calibrate_thresholds(np.array([0.5]), np.array([1]), grid_size=1)

    def test_paper_targets_constant(self):
        assert PAPER_PRECISION_TARGETS == (0.91, 0.93, 0.95, 0.97, 0.99)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), target=st.sampled_from([0.9, 0.95, 0.99]))
def test_calibration_invariants(seed, target):
    """p_low <= p_high always, and coverage is a valid fraction."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, 120)
    probs = np.clip(labels * rng.uniform(0.3, 0.8) + rng.normal(0.2, 0.25, 120), 0, 1)
    calibration = calibrate_thresholds(probs, labels, precision_target=target)
    assert 0.0 <= calibration.thresholds.p_low <= calibration.thresholds.p_high <= 1.0
    assert 0.0 <= calibration.coverage <= 1.0
