"""Tests for the model trainer."""

import numpy as np
import pytest

from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.trainer import ModelTrainer, TrainingConfig
from repro.data.corpus import LabeledDataset
from repro.storage.store import RepresentationStore
from repro.transforms.spec import TransformSpec


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(learning_rate=-1.0)


def test_train_models_returns_one_per_spec(tiny_splits):
    specs = [ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray")),
             ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "rgb"))]
    trainer = ModelTrainer(TrainingConfig(epochs=2, batch_size=16))
    models = trainer.train_models(specs, tiny_splits.train,
                                  rng=np.random.default_rng(0))
    assert len(models) == 2
    assert {model.name for model in models} == {spec.name for spec in specs}
    assert all(model.kind == "specialized" for model in models)
    assert all(np.isfinite(model.train_accuracy) for model in models)


def test_trained_model_learns_better_than_chance(tiny_splits):
    spec = ModelSpec(ArchitectureSpec(2, 4, 8), TransformSpec(16, "rgb"))
    trainer = ModelTrainer(TrainingConfig(epochs=4, batch_size=16))
    model = trainer.train_models([spec], tiny_splits.train,
                                 rng=np.random.default_rng(1))[0]
    predictions = model.predict(tiny_splits.eval.images)
    accuracy = float((predictions == tiny_splits.eval.labels).mean())
    assert accuracy > 0.55


def test_empty_specs_or_data_raise(tiny_splits):
    trainer = ModelTrainer(TrainingConfig(epochs=1))
    with pytest.raises(ValueError):
        trainer.train_models([], tiny_splits.train)
    empty = LabeledDataset(np.zeros((0, 16, 16, 3)), np.zeros(0))
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    with pytest.raises(ValueError):
        trainer.train_models([spec], empty)


def test_train_model_uses_shared_store(tiny_splits):
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    trainer = ModelTrainer(TrainingConfig(epochs=1, augment=False))
    store = RepresentationStore()
    trainer.train_model(spec, tiny_splits.train, store,
                        rng=np.random.default_rng(2))
    assert spec.transform in store


def test_augmentation_doubles_training_data(tiny_splits):
    """With augmentation on, the representation cache holds 2x the images."""
    spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(8, "gray"))
    trainer = ModelTrainer(TrainingConfig(epochs=1, augment=True))
    models = trainer.train_models([spec], tiny_splits.train,
                                  rng=np.random.default_rng(3))
    assert len(models) == 1
