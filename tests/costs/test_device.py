"""Tests for device profiles and calibration."""

import pytest

from repro.costs.device import SERVER_CPU, SERVER_GPU, DeviceProfile, calibrate_device


def test_inference_time_includes_overhead():
    device = DeviceProfile("d", flops_per_second=1e6, inference_overhead_s=0.5)
    assert device.inference_time(1e6) == pytest.approx(1.5)


def test_inference_time_zero_flops_is_overhead_only():
    device = DeviceProfile("d", flops_per_second=1e6, inference_overhead_s=0.25)
    assert device.inference_time(0) == pytest.approx(0.25)


def test_inference_time_rejects_negative_flops():
    with pytest.raises(ValueError):
        SERVER_GPU.inference_time(-1)


def test_transform_time_linear_in_values():
    device = DeviceProfile("d", flops_per_second=1e6,
                           transform_seconds_per_value=2e-6)
    assert device.transform_time(1000) == pytest.approx(2e-3)


def test_invalid_profiles():
    with pytest.raises(ValueError):
        DeviceProfile("bad", flops_per_second=0)
    with pytest.raises(ValueError):
        DeviceProfile("bad", flops_per_second=1.0, transform_seconds_per_value=-1)


def test_gpu_faster_than_cpu_at_inference():
    flops = 1e9
    assert SERVER_GPU.inference_time(flops) < SERVER_CPU.inference_time(flops)


class TestCalibration:
    def test_reference_lands_at_target(self):
        reference_flops = 5e6
        device = calibrate_device(SERVER_GPU, reference_flops, target_fps=75.0)
        assert 1.0 / device.inference_time(reference_flops) == pytest.approx(75.0)

    def test_preserves_other_fields(self):
        device = calibrate_device(SERVER_GPU, 1e6, target_fps=100.0)
        assert device.inference_overhead_s == SERVER_GPU.inference_overhead_s
        assert device.transform_seconds_per_value == SERVER_GPU.transform_seconds_per_value

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            calibrate_device(SERVER_GPU, 1e6, target_fps=1e9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            calibrate_device(SERVER_GPU, 0, target_fps=75.0)
        with pytest.raises(ValueError):
            calibrate_device(SERVER_GPU, 1e6, target_fps=0.0)
