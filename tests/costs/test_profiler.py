"""Tests for the cost profiler and cost breakdowns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.device import DeviceProfile
from repro.costs.profiler import CostBreakdown, CostProfiler, measure_inference_time
from repro.costs.scenario import ARCHIVE, CAMERA, INFER_ONLY, ONGOING
from repro.nn.layers import Dense, Sigmoid
from repro.nn.network import Sequential
from repro.transforms.spec import TransformSpec

DEVICE = DeviceProfile("test", flops_per_second=1e9,
                       transform_seconds_per_value=1e-8,
                       inference_overhead_s=1e-5)


class TestCostBreakdown:
    def test_total_and_throughput(self):
        cost = CostBreakdown(load_s=0.1, transform_s=0.2, infer_s=0.2)
        assert cost.total_s == pytest.approx(0.5)
        assert cost.throughput_fps == pytest.approx(2.0)

    def test_zero_cost_has_infinite_throughput(self):
        assert CostBreakdown().throughput_fps == float("inf")

    def test_addition_and_scaling(self):
        a = CostBreakdown(1.0, 2.0, 3.0)
        b = CostBreakdown(0.5, 0.5, 0.5)
        total = a + b
        assert total.total_s == pytest.approx(7.5)
        assert a.scaled(0.5).total_s == pytest.approx(3.0)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            CostBreakdown(load_s=-1.0)
        with pytest.raises(ValueError):
            CostBreakdown().scaled(-1.0)


class TestCostProfiler:
    def test_infer_only_has_no_data_handling(self):
        profiler = CostProfiler(DEVICE, INFER_ONLY, source_resolution=32)
        cost = profiler.model_cost(1e6, TransformSpec(8, "gray"))
        assert cost.load_s == 0.0 and cost.transform_s == 0.0
        assert cost.infer_s > 0.0

    def test_archive_loads_full_image_regardless_of_spec(self):
        profiler = CostProfiler(DEVICE, ARCHIVE, source_resolution=32)
        small = profiler.load_time(TransformSpec(8, "gray"))
        large = profiler.load_time(TransformSpec(32, "rgb"))
        assert small == pytest.approx(large)
        assert small > 0

    def test_ongoing_load_scales_with_representation(self):
        profiler = CostProfiler(DEVICE, ONGOING, source_resolution=32)
        small = profiler.load_time(TransformSpec(8, "gray"))
        large = profiler.load_time(TransformSpec(32, "rgb"))
        assert large > small

    def test_camera_transform_scales_with_representation(self):
        profiler = CostProfiler(DEVICE, CAMERA, source_resolution=32)
        small = profiler.transform_time(TransformSpec(8, "gray"))
        identity = profiler.transform_time(TransformSpec(32, "rgb"))
        assert small > 0
        assert identity == 0.0  # no resize needed for the native representation

    def test_infer_time_monotone_in_flops(self):
        profiler = CostProfiler(DEVICE, INFER_ONLY, source_resolution=32)
        assert profiler.infer_time(2e6) > profiler.infer_time(1e6)

    def test_cost_resolution_scales_data_handling_only(self):
        base = CostProfiler(DEVICE, CAMERA, source_resolution=32)
        scaled = CostProfiler(DEVICE, CAMERA, source_resolution=32,
                              cost_resolution=224)
        spec = TransformSpec(8, "gray")
        ratio = (224 / 32) ** 2
        assert scaled.transform_time(spec) == pytest.approx(
            base.transform_time(spec) * ratio)
        assert scaled.infer_time(1e6) == pytest.approx(base.infer_time(1e6))

    def test_with_scenario_preserves_settings(self):
        profiler = CostProfiler(DEVICE, INFER_ONLY, source_resolution=32,
                                cost_resolution=224)
        other = profiler.with_scenario(ARCHIVE)
        assert other.scenario is ARCHIVE
        assert other.cost_resolution == 224

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CostProfiler(DEVICE, INFER_ONLY, source_resolution=0)
        with pytest.raises(ValueError):
            CostProfiler(DEVICE, INFER_ONLY, source_resolution=32, cost_resolution=0)

    def test_scenario_ordering_for_a_small_model(self):
        """INFER ONLY is never slower than CAMERA/ONGOING, ARCHIVE is slowest."""
        spec = TransformSpec(8, "gray")
        flops = 1e5
        totals = {}
        for scenario in (INFER_ONLY, CAMERA, ONGOING, ARCHIVE):
            profiler = CostProfiler(DEVICE, scenario, source_resolution=32,
                                    cost_resolution=224)
            totals[scenario.name] = profiler.model_cost(flops, spec).total_s
        assert totals["infer_only"] <= totals["camera"]
        assert totals["infer_only"] <= totals["ongoing"]
        assert totals["archive"] >= totals["ongoing"]


class TestMeasuredMode:
    def test_measure_inference_time_positive(self):
        net = Sequential([Dense(4, 1), Sigmoid()], input_shape=(4,))
        images = np.random.default_rng(0).random((32, 4))
        seconds = measure_inference_time(net, images, repeats=2)
        assert seconds > 0

    def test_measure_requires_images(self):
        net = Sequential([Dense(4, 1), Sigmoid()], input_shape=(4,))
        with pytest.raises(ValueError):
            measure_inference_time(net, np.zeros((0, 4)))


@settings(max_examples=25, deadline=None)
@given(flops=st.floats(0, 1e9), resolution=st.sampled_from([8, 16, 30, 60]),
       mode=st.sampled_from(["rgb", "gray", "red"]))
def test_model_cost_components_nonnegative(flops, resolution, mode):
    profiler = CostProfiler(DEVICE, ARCHIVE, source_resolution=64)
    cost = profiler.model_cost(flops, TransformSpec(resolution, mode))
    assert cost.load_s >= 0 and cost.transform_s >= 0 and cost.infer_s >= 0
    assert cost.total_s >= cost.infer_s
