"""Tests for the deployment scenarios."""

import pytest

from repro.costs.scenario import (
    ARCHIVE,
    CAMERA,
    INFER_ONLY,
    ONGOING,
    PAPER_SCENARIOS,
    Scenario,
    get_scenario,
)


def test_four_paper_scenarios():
    assert len(PAPER_SCENARIOS) == 4
    assert {s.name for s in PAPER_SCENARIOS} == {"infer_only", "archive",
                                                 "ongoing", "camera"}


def test_infer_only_pays_nothing_extra():
    assert not INFER_ONLY.include_load
    assert not INFER_ONLY.include_transform


def test_archive_pays_everything():
    assert ARCHIVE.include_load and ARCHIVE.include_transform
    assert ARCHIVE.load_full_image


def test_ongoing_loads_representation_only():
    assert ONGOING.include_load
    assert not ONGOING.include_transform
    assert not ONGOING.load_full_image


def test_camera_transform_only():
    assert CAMERA.include_transform
    assert not CAMERA.include_load


def test_get_scenario_lookup():
    assert get_scenario("archive") is ARCHIVE
    with pytest.raises(KeyError):
        get_scenario("satellite")


def test_custom_scenario_needs_name():
    with pytest.raises(ValueError):
        Scenario(name="", include_load=False, include_transform=False)
