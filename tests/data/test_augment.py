"""Tests for flip augmentation."""

import numpy as np

from repro.data.augment import augment_with_flips
from repro.data.corpus import LabeledDataset


def make_dataset(n=6):
    rng = np.random.default_rng(0)
    return LabeledDataset(rng.random((n, 8, 8, 3)), rng.integers(0, 2, n))


def test_doubles_dataset():
    dataset = make_dataset(6)
    augmented = augment_with_flips(dataset)
    assert len(augmented) == 12


def test_labels_preserved():
    dataset = make_dataset(5)
    augmented = augment_with_flips(dataset)
    np.testing.assert_array_equal(augmented.labels[:5], dataset.labels)
    np.testing.assert_array_equal(augmented.labels[5:], dataset.labels)


def test_second_half_is_mirrored():
    dataset = make_dataset(4)
    augmented = augment_with_flips(dataset)
    np.testing.assert_allclose(augmented.images[4], dataset.images[0][:, ::-1, :])


def test_empty_dataset_passthrough():
    empty = LabeledDataset(np.zeros((0, 8, 8, 3)), np.zeros(0))
    assert len(augment_with_flips(empty)) == 0


def test_shuffle_with_rng():
    dataset = make_dataset(8)
    augmented = augment_with_flips(dataset, rng=np.random.default_rng(1))
    assert len(augmented) == 16
    # Shuffled order should (almost surely) differ from plain concatenation.
    plain = augment_with_flips(dataset)
    assert not np.allclose(augmented.images, plain.images)
