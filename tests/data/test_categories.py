"""Tests for the category definitions (paper Table II)."""

import pytest

from repro.data.categories import (
    TABLE2_CATEGORIES,
    CategoryDef,
    get_category,
    list_category_names,
)


def test_table2_has_ten_categories():
    assert len(TABLE2_CATEGORIES) == 10


def test_table2_names_match_paper():
    expected = {"acorn", "amphibian", "cloak", "coho", "fence",
                "ferret", "komondor", "pinwheel", "scorpion", "wallet"}
    assert set(list_category_names()) == expected


def test_imagenet_ids_present_and_unique():
    ids = [category.imagenet_id for category in TABLE2_CATEGORIES]
    assert all(identifier.startswith("n") for identifier in ids)
    assert len(set(ids)) == len(ids)


def test_get_category_lookup():
    category = get_category("komondor")
    assert category.name == "komondor"
    assert category.imagenet_id == "n02105505"


def test_get_category_unknown_raises_with_suggestions():
    with pytest.raises(KeyError) as excinfo:
        get_category("zebra")
    assert "available" in str(excinfo.value)


def test_category_validation_rejects_bad_shape():
    with pytest.raises(ValueError):
        CategoryDef("x", "n0", "hexagon", (0.5, 0.5, 0.5), 3.0)


def test_category_validation_rejects_bad_color():
    with pytest.raises(ValueError):
        CategoryDef("x", "n0", "disk", (1.5, 0.5, 0.5), 3.0)


def test_category_validation_rejects_bad_size_range():
    with pytest.raises(ValueError):
        CategoryDef("x", "n0", "disk", (0.5, 0.5, 0.5), 3.0, size_range=(0.4, 0.2))


def test_categories_have_distinct_render_signatures():
    """Distinct shapes or colors keep the ten predicates distinguishable."""
    signatures = {(c.shape, c.color) for c in TABLE2_CATEGORIES}
    assert len(signatures) == len(TABLE2_CATEGORIES)
