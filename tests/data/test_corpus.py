"""Tests for labeled datasets, splits and the queryable corpus."""

import numpy as np
import pytest

from repro.data.categories import TABLE2_CATEGORIES, get_category
from repro.data.corpus import (
    ImageCorpus,
    LabeledDataset,
    build_predicate_dataset,
    build_predicate_splits,
    generate_corpus,
)


def make_dataset(n=10, size=8, rng=None):
    rng = rng or np.random.default_rng(0)
    return LabeledDataset(rng.random((n, size, size, 3)), rng.integers(0, 2, n))


class TestLabeledDataset:
    def test_length_and_size(self):
        dataset = make_dataset(7, 8)
        assert len(dataset) == 7
        assert dataset.image_size == 8

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            LabeledDataset(np.zeros((3, 4, 4, 3)), np.zeros(2))

    def test_non_nhwc_raises(self):
        with pytest.raises(ValueError):
            LabeledDataset(np.zeros((3, 4, 4)), np.zeros(3))

    def test_subset(self):
        dataset = make_dataset(10)
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.images[1], dataset.images[2])

    def test_shuffled_preserves_pairs(self):
        rng = np.random.default_rng(1)
        dataset = make_dataset(20, rng=rng)
        shuffled = dataset.shuffled(rng)
        # Every (image, label) pair still appears: match via image sums.
        original = sorted(zip(dataset.images.sum(axis=(1, 2, 3)), dataset.labels))
        permuted = sorted(zip(shuffled.images.sum(axis=(1, 2, 3)), shuffled.labels))
        np.testing.assert_allclose(np.array(original), np.array(permuted))

    def test_concat(self):
        a, b = make_dataset(4), make_dataset(6)
        combined = a.concat(b)
        assert len(combined) == 10

    def test_concat_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_dataset(4, size=8).concat(make_dataset(4, size=16))

    def test_split_fractions(self):
        dataset = make_dataset(20)
        parts = dataset.split((0.5, 0.25, 0.25), np.random.default_rng(0))
        assert [len(p) for p in parts] == [10, 5, 5]

    def test_split_must_sum_to_one(self):
        with pytest.raises(ValueError):
            make_dataset(10).split((0.5, 0.2), np.random.default_rng(0))

    def test_positive_fraction(self):
        dataset = LabeledDataset(np.zeros((4, 4, 4, 3)), np.array([1, 1, 0, 0]))
        assert dataset.positive_fraction == 0.5


class TestPredicateDatasets:
    def test_build_predicate_dataset_balanced(self):
        rng = np.random.default_rng(2)
        dataset = build_predicate_dataset(get_category("fence"), 6, 6, 16, rng)
        assert len(dataset) == 12
        assert dataset.labels.sum() == 6

    def test_build_predicate_dataset_empty(self):
        dataset = build_predicate_dataset(get_category("fence"), 0, 0, 16,
                                          np.random.default_rng(0))
        assert len(dataset) == 0

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            build_predicate_dataset(get_category("fence"), -1, 2, 16,
                                    np.random.default_rng(0))

    def test_build_splits_sizes(self):
        splits = build_predicate_splits(get_category("wallet"), n_train=10,
                                        n_config=6, n_eval=8, image_size=16,
                                        rng=np.random.default_rng(3))
        assert splits.sizes() == (10, 6, 8)
        assert splits.train.image_size == 16

    def test_splits_are_roughly_balanced(self):
        splits = build_predicate_splits(get_category("wallet"), n_train=20,
                                        n_config=10, n_eval=10, image_size=16,
                                        rng=np.random.default_rng(4))
        assert splits.train.positive_fraction == 0.5


class TestImageCorpus:
    def test_generate_corpus_shapes(self):
        corpus = generate_corpus(TABLE2_CATEGORIES[:3], n_images=12,
                                 image_size=16, rng=np.random.default_rng(5))
        assert len(corpus) == 12
        assert corpus.image_size == 16
        assert set(corpus.content) == {c.name for c in TABLE2_CATEGORIES[:3]}
        assert "location" in corpus.metadata

    def test_corpus_validates_column_lengths(self):
        with pytest.raises(ValueError):
            ImageCorpus(images=np.zeros((3, 8, 8, 3)),
                        metadata={"location": np.array(["a", "b"])})

    def test_generate_corpus_requires_images(self):
        with pytest.raises(ValueError):
            generate_corpus(TABLE2_CATEGORIES[:1], n_images=0, image_size=16)

    def test_timestamps_sorted(self):
        corpus = generate_corpus(TABLE2_CATEGORIES[:2], n_images=10,
                                 image_size=16, rng=np.random.default_rng(6))
        timestamps = corpus.metadata["timestamp"]
        assert np.all(np.diff(timestamps) >= 0)

    def test_list_valued_columns_coerced_to_arrays(self):
        # Regression: __post_init__ validated via np.asarray but stored the
        # original Python lists, breaking persistence and append paths.
        corpus = ImageCorpus(images=np.zeros((2, 8, 8, 3)),
                             metadata={"location": ["a", "b"]},
                             content={"cat": [True, False]})
        assert isinstance(corpus.metadata["location"], np.ndarray)
        assert isinstance(corpus.content["cat"], np.ndarray)


class TestImageCorpusAppend:
    def make(self, n=4):
        return ImageCorpus(
            images=np.zeros((n, 8, 8, 3)),
            metadata={"location": np.array(["a"] * n)},
            content={"cat": np.zeros(n, dtype=bool)})

    def test_append_returns_new_ids_and_grows_in_place(self):
        corpus = self.make(4)
        new_ids = corpus.append(np.ones((2, 8, 8, 3)),
                                metadata={"location": ["b", "c"]},
                                content={"cat": [True, True]})
        np.testing.assert_array_equal(new_ids, [4, 5])
        assert len(corpus) == 6
        assert corpus.metadata["location"][-1] == "c"
        assert corpus.content["cat"][-2:].all()
        assert corpus.images[-1].max() == 1.0

    def test_append_pads_missing_content(self):
        corpus = self.make(3)
        corpus.append(np.zeros((2, 8, 8, 3)), metadata={"location": ["b", "b"]})
        assert corpus.content["cat"].shape == (5,)
        assert not corpus.content["cat"][-2:].any()

    def test_append_rejects_wrong_frame_shape(self):
        corpus = self.make(3)
        with pytest.raises(ValueError):
            corpus.append(np.zeros((2, 16, 16, 3)),
                          metadata={"location": ["b", "b"]})

    def test_append_rejects_metadata_mismatch(self):
        corpus = self.make(3)
        with pytest.raises(ValueError):
            corpus.append(np.zeros((1, 8, 8, 3)), metadata={})
        with pytest.raises(ValueError):
            corpus.append(np.zeros((1, 8, 8, 3)),
                          metadata={"location": ["b"], "extra": [1]})

    def test_append_rejects_unknown_content(self):
        corpus = self.make(3)
        with pytest.raises(ValueError):
            corpus.append(np.zeros((1, 8, 8, 3)), metadata={"location": ["b"]},
                          content={"dog": [True]})

    def test_append_empty_batch_is_noop(self):
        corpus = self.make(3)
        new_ids = corpus.append(np.zeros((0, 8, 8, 3)),
                                metadata={"location": np.array([], dtype=str)})
        assert new_ids.size == 0
        assert len(corpus) == 3
