"""Tests for the procedural image renderer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.categories import TABLE2_CATEGORIES, get_category
from repro.data.synthesis import render_background, render_image, render_object, shape_mask


class TestShapeMask:
    @pytest.mark.parametrize("shape", ["disk", "square", "triangle", "ring",
                                       "cross", "stripes", "diamond", "checker",
                                       "blob", "star"])
    def test_all_shapes_produce_nonempty_mask(self, shape):
        rng = np.random.default_rng(0)
        mask = shape_mask(shape, 32, (0.5, 0.5), 0.3, rng)
        assert mask.shape == (32, 32)
        assert 0 < mask.sum() < 32 * 32

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            shape_mask("hexagon", 16, (0.5, 0.5), 0.3, np.random.default_rng(0))

    def test_disk_centered(self):
        mask = shape_mask("disk", 33, (0.5, 0.5), 0.2, np.random.default_rng(0))
        assert mask[16, 16] == 1.0
        assert mask[0, 0] == 0.0

    def test_ring_has_hole(self):
        mask = shape_mask("ring", 41, (0.5, 0.5), 0.4, np.random.default_rng(0))
        assert mask[20, 20] == 0.0


class TestBackground:
    def test_shape_and_range(self):
        image = render_background(24, np.random.default_rng(0))
        assert image.shape == (24, 24, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_different_seeds_differ(self):
        a = render_background(16, np.random.default_rng(0))
        b = render_background(16, np.random.default_rng(1))
        assert not np.allclose(a, b)


class TestRenderObject:
    def test_changes_image(self):
        rng = np.random.default_rng(0)
        background = render_background(32, rng)
        composed = render_object(background, get_category("komondor"), rng)
        assert not np.allclose(background, composed)
        assert composed.min() >= 0.0 and composed.max() <= 1.0

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        background = render_background(16, rng)
        copy = background.copy()
        render_object(background, get_category("acorn"), rng)
        np.testing.assert_allclose(background, copy)


class TestRenderImage:
    def test_positive_and_negative_shapes(self):
        rng = np.random.default_rng(0)
        category = get_category("scorpion")
        pos = render_image(category, 32, True, rng, TABLE2_CATEGORIES)
        neg = render_image(category, 32, False, rng, TABLE2_CATEGORIES)
        assert pos.shape == neg.shape == (32, 32, 3)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            render_image(get_category("acorn"), 4, True, np.random.default_rng(0))

    def test_positive_images_contain_category_color_signature(self):
        """Positives carry, on average, more of the category's color than negatives."""
        rng = np.random.default_rng(1)
        category = get_category("pinwheel")  # strongly blue
        pos = np.stack([render_image(category, 32, True, rng)
                        for _ in range(8)])
        neg = np.stack([render_image(category, 32, False, rng)
                        for _ in range(8)])
        blue_excess = lambda imgs: (imgs[..., 2] - imgs[..., 0]).mean()
        assert blue_excess(pos) > blue_excess(neg)


@settings(max_examples=15, deadline=None)
@given(size=st.sampled_from([16, 24, 32]), positive=st.booleans(),
       index=st.integers(0, len(TABLE2_CATEGORIES) - 1))
def test_render_image_always_in_unit_range(size, positive, index):
    rng = np.random.default_rng(size + index)
    image = render_image(TABLE2_CATEGORIES[index], size, positive, rng,
                         TABLE2_CATEGORIES)
    assert image.shape == (size, size, 3)
    assert image.min() >= 0.0 and image.max() <= 1.0
