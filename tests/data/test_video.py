"""Tests for the synthetic video stream generator."""

import numpy as np
import pytest

from repro.data.video import (
    CORAL_PRESET,
    JACKSON_PRESET,
    VideoStreamConfig,
    generate_video_stream,
)


def small_config(**overrides):
    defaults = dict(name="test", category_name="coho", n_frames=80,
                    frame_size=24, positive_rate=0.3, mean_dwell=8.0,
                    sensor_noise=0.01, difficulty=0)
    defaults.update(overrides)
    return VideoStreamConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_frames(self):
        with pytest.raises(ValueError):
            small_config(n_frames=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            small_config(positive_rate=1.5)

    def test_rejects_bad_dwell(self):
        with pytest.raises(ValueError):
            small_config(mean_dwell=0.5)


class TestGeneration:
    def test_shapes_and_range(self):
        stream = generate_video_stream(small_config(), np.random.default_rng(0))
        assert stream.frames.shape == (80, 24, 24, 3)
        assert stream.labels.shape == (80,)
        assert stream.frames.min() >= 0.0 and stream.frames.max() <= 1.0

    def test_labels_are_binary(self):
        stream = generate_video_stream(small_config(), np.random.default_rng(1))
        assert set(np.unique(stream.labels)) <= {0, 1}

    def test_contains_both_classes(self):
        stream = generate_video_stream(small_config(n_frames=200),
                                       np.random.default_rng(2))
        assert 0 < stream.labels.mean() < 1

    def test_temporal_redundancy_high_for_long_dwell(self):
        config = small_config(n_frames=200, mean_dwell=25.0)
        stream = generate_video_stream(config, np.random.default_rng(3))
        assert stream.temporal_redundancy() > 0.85

    def test_as_dataset(self):
        stream = generate_video_stream(small_config(), np.random.default_rng(4))
        dataset = stream.as_dataset()
        assert len(dataset) == len(stream)

    def test_positive_frames_differ_from_background(self):
        stream = generate_video_stream(small_config(n_frames=150),
                                       np.random.default_rng(5))
        positives = stream.frames[stream.labels == 1]
        negatives = stream.frames[stream.labels == 0]
        assert positives.shape[0] > 0 and negatives.shape[0] > 0
        assert abs(positives.mean() - negatives.mean()) > 1e-3

    def test_deterministic_given_seed(self):
        a = generate_video_stream(small_config(), np.random.default_rng(42))
        b = generate_video_stream(small_config(), np.random.default_rng(42))
        np.testing.assert_allclose(a.frames, b.frames)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestPresets:
    def test_coral_more_redundant_than_jackson(self):
        """The easy stream has markedly longer dwell times than the hard one."""
        assert CORAL_PRESET.mean_dwell > JACKSON_PRESET.mean_dwell
        assert CORAL_PRESET.sensor_noise < JACKSON_PRESET.sensor_noise

    def test_preset_streams_generate(self):
        from dataclasses import replace
        coral = generate_video_stream(replace(CORAL_PRESET, n_frames=60,
                                              frame_size=24),
                                      np.random.default_rng(0))
        jackson = generate_video_stream(replace(JACKSON_PRESET, n_frames=60,
                                                frame_size=24),
                                        np.random.default_rng(0))
        assert coral.temporal_redundancy() >= jackson.temporal_redundancy() - 0.05
