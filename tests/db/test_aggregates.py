"""Tests for distributed partial aggregates: compute, merge, finalize."""

import numpy as np
import pytest

from repro.db.aggregates import compute_partials, merge_partials
from repro.query.ast import Aggregate, QueryError
from repro.query.relation import Relation


def _relation(**columns):
    return Relation({name: np.asarray(values)
                     for name, values in columns.items()})


COUNT = Aggregate("count", None)


class TestComputePartials:
    def test_global_count(self):
        partials = compute_partials(_relation(x=[1, 2, 3]), (COUNT,), ())
        assert partials.groups == {(): (3,)}

    def test_global_aggregate_over_zero_rows_is_one_group(self):
        partials = compute_partials(
            _relation(x=np.array([], dtype=np.int64)),
            (COUNT, Aggregate("sum", "x")), ())
        assert partials.groups[()][0] == 0
        relation = partials.finalize()
        assert len(relation) == 1
        assert relation["count(*)"][0] == 0
        assert np.isnan(relation["sum(x)"][0])

    def test_grouped_counts(self):
        partials = compute_partials(
            _relation(location=["a", "b", "a"], x=[1, 2, 3]),
            (COUNT,), ("location",))
        assert partials.groups == {("a",): (2,), ("b",): (1,)}

    def test_grouped_zero_rows_has_zero_groups(self):
        partials = compute_partials(
            _relation(location=np.array([], dtype="U4")),
            (COUNT,), ("location",))
        assert partials.groups == {}
        assert len(partials.finalize()) == 0

    def test_avg_state_is_sum_and_count(self):
        partials = compute_partials(
            _relation(x=[1.0, 2.0, 4.0]), (Aggregate("avg", "x"),), ())
        assert partials.groups[()][0] == (7.0, 3)

    def test_min_max(self):
        partials = compute_partials(
            _relation(x=[3, 1, 2]),
            (Aggregate("min", "x"), Aggregate("max", "x")), ())
        assert partials.groups[()] == (1, 3)

    def test_min_max_over_strings_is_lexicographic(self):
        partials = compute_partials(
            _relation(x=["seattle", "austin", "detroit"]),
            (Aggregate("min", "x"), Aggregate("max", "x")), ())
        assert partials.groups[()] == ("austin", "seattle")

    def test_count_column_skips_nan(self):
        partials = compute_partials(
            _relation(x=[1.0, np.nan, 3.0]), (Aggregate("count", "x"),), ())
        assert partials.groups[()][0] == 2

    def test_all_aggregates_treat_nan_as_null(self):
        # NaN is the relation's NULL: every aggregate skips it, so a single
        # bad sensor reading cannot poison a group.
        partials = compute_partials(
            _relation(x=[1.0, 2.0, np.nan]),
            (Aggregate("sum", "x"), Aggregate("avg", "x"),
             Aggregate("min", "x"), Aggregate("max", "x")), ())
        relation = partials.finalize()
        assert relation["sum(x)"][0] == 3.0
        assert relation["avg(x)"][0] == 1.5
        assert relation["min(x)"][0] == 1.0
        assert relation["max(x)"][0] == 2.0

    def test_all_nan_column_finalizes_to_nan(self):
        partials = compute_partials(
            _relation(x=[np.nan, np.nan]),
            (Aggregate("count", "x"), Aggregate("sum", "x"),
             Aggregate("min", "x")), ())
        relation = partials.finalize()
        assert relation["count(x)"][0] == 0
        assert np.isnan(relation["sum(x)"][0])
        assert np.isnan(relation["min(x)"][0])

    def test_high_cardinality_group_by(self):
        n = 5000
        partials = compute_partials(
            _relation(key=np.arange(n), x=np.ones(n)),
            (COUNT, Aggregate("sum", "x")), ("key",))
        assert len(partials.groups) == n
        assert partials.groups[(7,)] == (1, (1.0, 1))

    def test_sum_non_numeric_rejected(self):
        with pytest.raises(QueryError, match="non-numeric"):
            compute_partials(_relation(x=["a", "b"]),
                             (Aggregate("sum", "x"),), ())

    def test_unknown_aggregate_column_rejected(self):
        with pytest.raises(QueryError, match="unknown column"):
            compute_partials(_relation(x=[1]), (Aggregate("sum", "y"),), ())

    def test_unknown_group_column_rejected(self):
        with pytest.raises(QueryError, match="GROUP BY"):
            compute_partials(_relation(x=[1]), (COUNT,), ("nope",))

    def test_multi_column_group_keys(self):
        partials = compute_partials(
            _relation(a=["x", "x", "y"], b=[1, 2, 1], v=[10, 20, 30]),
            (Aggregate("sum", "v"),), ("a", "b"))
        assert partials.groups[("x", 1)] == ((10.0, 1),)
        assert partials.groups[("x", 2)] == ((20.0, 1),)
        assert partials.groups[("y", 1)] == ((30.0, 1),)


class TestMergeAndFinalize:
    def _shard(self, locations, values):
        return compute_partials(
            _relation(location=locations, x=values),
            (COUNT, Aggregate("sum", "x"), Aggregate("avg", "x"),
             Aggregate("min", "x"), Aggregate("max", "x")),
            ("location",))

    def test_merge_matches_single_pass(self):
        left = self._shard(["a", "b"], [1.0, 2.0])
        right = self._shard(["a", "c"], [3.0, 4.0])
        merged = merge_partials(left, right)
        reference = self._shard(["a", "b", "a", "c"], [1.0, 2.0, 3.0, 4.0])
        assert merged.groups == reference.groups

    def test_avg_merge_is_exact_not_average_of_averages(self):
        # Shard sizes differ: avg of shard-avgs would be (1 + 5)/2 = 3.
        left = self._shard(["a"], [1.0])
        right = self._shard(["a", "a", "a"], [4.0, 5.0, 6.0])
        merged = merge_partials(left, right)
        relation = merged.finalize()
        assert relation["avg(x)"][0] == pytest.approx(16.0 / 4)

    def test_merge_is_associative(self):
        shards = [self._shard(["a"], [float(i)]) for i in range(4)]
        left_fold = merge_partials(merge_partials(shards[0], shards[1]),
                                   merge_partials(shards[2], shards[3]))
        right_fold = merge_partials(
            shards[0], merge_partials(shards[1],
                                      merge_partials(shards[2], shards[3])))
        assert left_fold.groups == right_fold.groups

    def test_disjoint_groups_union(self):
        merged = merge_partials(self._shard(["a"], [1.0]),
                                self._shard(["b"], [2.0]))
        assert set(merged.groups) == {("a",), ("b",)}

    def test_mismatched_specs_rejected(self):
        left = compute_partials(_relation(x=[1]), (COUNT,), ())
        right = compute_partials(_relation(x=[1]),
                                 (Aggregate("sum", "x"),), ())
        with pytest.raises(ValueError):
            merge_partials(left, right)

    def test_finalize_sorts_groups_by_key(self):
        merged = merge_partials(self._shard(["b"], [1.0]),
                                self._shard(["a"], [2.0]))
        relation = merged.finalize()
        np.testing.assert_array_equal(relation["location"], ["a", "b"])

    def test_finalize_row_wise_reference(self):
        rng = np.random.default_rng(5)
        locations = rng.choice(["x", "y", "z"], size=40)
        values = rng.normal(size=40)
        half = 20
        merged = merge_partials(self._shard(locations[:half], values[:half]),
                                self._shard(locations[half:], values[half:]))
        relation = merged.finalize()
        for i, location in enumerate(relation["location"]):
            rows = values[locations == location]
            assert relation["count(*)"][i] == rows.size
            assert relation["sum(x)"][i] == pytest.approx(rows.sum())
            assert relation["avg(x)"][i] == pytest.approx(rows.mean())
            assert relation["min(x)"][i] == pytest.approx(rows.min())
            assert relation["max(x)"][i] == pytest.approx(rows.max())
