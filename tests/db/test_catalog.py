"""Tests for the multi-table catalog: named corpora, FROM <table> routing,
cross-camera fan-out, namespace-aware store budgeting and catalog
persistence."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import FANOUT_TABLE, FanoutResultSet, VisualDatabase, connect
from repro.db.catalog import Catalog
from repro.query.sql import SqlParseError
from repro.storage.store import RepresentationStore
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
FANOUT_SQL = f"SELECT * FROM {FANOUT_TABLE} WHERE contains_object(komondor)"


def make_corpus(n_images: int, seed: int, positive_rate: float = 0.9):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed),
                           positive_rate=positive_rate)


@pytest.fixture()
def cameras():
    """Three shards of different sizes (function-scoped: ingest mutates)."""
    return {"cam_north": make_corpus(18, seed=31),
            "cam_south": make_corpus(12, seed=32),
            "cam_east": make_corpus(24, seed=33)}


@pytest.fixture()
def db(cameras, tiny_optimizer, tiny_device):
    database = connect(cameras, device=tiny_device, scenario="camera",
                       calibrate_target_fps=None,
                       default_constraints=CONSTRAINED)
    database.register_optimizer("komondor", tiny_optimizer,
                                reference_params=REFERENCE_PARAMS)
    return database


class TestCatalog:
    def test_attach_detach_tables(self, cameras):
        catalog = Catalog()
        for name, corpus in cameras.items():
            catalog.attach(name, corpus)
        assert catalog.tables() == ["cam_north", "cam_south", "cam_east"]
        catalog.detach("cam_south")
        assert catalog.tables() == ["cam_north", "cam_east"]
        assert "cam_south" not in catalog

    def test_duplicate_attach_rejected(self, cameras):
        catalog = Catalog()
        catalog.attach("cam", cameras["cam_north"])
        with pytest.raises(ValueError, match="already attached"):
            catalog.attach("cam", cameras["cam_south"])

    def test_invalid_and_reserved_names_rejected(self, cameras):
        catalog = Catalog()
        for bad in ("1cam", "cam-2", "", "cam x"):
            with pytest.raises(ValueError):
                catalog.attach(bad, cameras["cam_north"])
        with pytest.raises(ValueError, match="reserved"):
            catalog.attach(FANOUT_TABLE, cameras["cam_north"])

    def test_detach_unknown_lists_tables(self, cameras):
        catalog = Catalog()
        catalog.attach("cam_a", cameras["cam_north"])
        with pytest.raises(KeyError, match="cam_a"):
            catalog.detach("cam_b")

    def test_connect_mapping_attaches_all(self, db):
        assert db.tables() == ["cam_north", "cam_south", "cam_east"]
        assert len(db.corpus_for("cam_south")) == 12

    def test_detach_purges_store_namespace(self, db):
        db.execute("SELECT * FROM cam_north WHERE contains_object(komondor)")
        store = db.executor_for("cam_north").store
        assert store.bytes_stored() > 0
        db.detach("cam_north")
        assert store.bytes_stored() == 0
        assert store.registered_specs() == []
        assert "cam_north" not in db.tables()

    def test_single_corpus_registers_images_table(self, tiny_optimizer,
                                                  tiny_device):
        database = connect(make_corpus(10, seed=1), device=tiny_device,
                           calibrate_target_fps=None)
        assert database.tables() == ["images"]
        assert len(database.corpus) == 10


class TestRouting:
    def test_from_table_routes_to_that_shard(self, db, cameras):
        result = db.execute(
            "SELECT * FROM cam_south WHERE contains_object(komondor)")
        assert result.plan.table == "cam_south"
        assert result.images_classified["komondor"] == len(cameras["cam_south"])
        # Only the targeted shard materialized labels.
        assert db.executor_for("cam_south").materialized_categories() == \
            ["komondor"]
        assert db.executor_for("cam_north").materialized_categories() == []

    def test_unknown_table_rejected_listing_known(self, db):
        with pytest.raises(SqlParseError) as excinfo:
            db.execute("SELECT * FROM cam_west WHERE contains_object(komondor)")
        message = str(excinfo.value)
        assert "cam_west" in message
        for table in db.tables():
            assert table in message
        # Nothing was classified by the failed query.
        for table in db.tables():
            assert db.executor_for(table).materialized_categories() == []

    def test_default_corpus_no_longer_answers_unknown_tables(
            self, tiny_optimizer, tiny_device):
        database = connect(make_corpus(10, seed=1), device=tiny_device,
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_optimizer("komondor", tiny_optimizer)
        with pytest.raises(SqlParseError, match="known tables"):
            database.execute(
                "SELECT * FROM typo_table WHERE contains_object(komondor)")

    def test_ingest_routes_to_named_table(self, db, cameras):
        batch = make_corpus(6, seed=40)
        new_ids = db.ingest(batch.images, metadata=batch.metadata,
                            content=batch.content, table="cam_south")
        np.testing.assert_array_equal(new_ids, np.arange(12, 18))
        assert len(db.corpus_for("cam_south")) == 18
        assert len(db.corpus_for("cam_north")) == 18  # untouched

    def test_ingest_without_table_needs_a_default(self, db):
        batch = make_corpus(4, seed=41)
        with pytest.raises(RuntimeError, match="name one explicitly"):
            db.ingest(batch.images, metadata=batch.metadata)


class TestFanout:
    def test_fanout_matches_union_of_per_table_queries(self, db, cameras):
        merged = db.execute(FANOUT_SQL)
        assert isinstance(merged, FanoutResultSet)
        assert merged.tables == tuple(cameras)

        per_table = {
            table: db.execute(f"SELECT * FROM {table} "
                              "WHERE contains_object(komondor)")
            for table in cameras}
        assert len(merged) == sum(len(r) for r in per_table.values())
        for table, result in per_table.items():
            np.testing.assert_array_equal(
                merged.per_table(table).image_ids, result.image_ids)

        # Row-level check: (__table__, image_id) pairs match the union.
        merged_pairs = {(row["__table__"], row["image_id"]) for row in merged}
        union_pairs = {(table, int(image_id))
                       for table, result in per_table.items()
                       for image_id in result.image_ids}
        assert merged_pairs == union_pairs

    def test_fanout_provenance_and_per_shard_stats(self, db, cameras):
        merged = db.execute(FANOUT_SQL)
        assert "__table__" in merged.columns
        assert set(merged.images_classified) == set(cameras)
        for table, corpus in cameras.items():
            assert merged.images_classified[table]["komondor"] == len(corpus)
            assert "komondor" in merged.cascades_used[table]
        counts = {table: 0 for table in cameras}
        for row in merged:
            counts[row["__table__"]] += 1
        for table in cameras:
            assert counts[table] == len(merged.per_table(table))

    def test_fanout_reuses_materialized_labels(self, db, cameras):
        db.execute(FANOUT_SQL)
        second = db.execute(FANOUT_SQL)
        for table in cameras:
            assert second.images_classified[table]["komondor"] == 0

    def test_explicit_tables_subset(self, db):
        subset = db.execute(FANOUT_SQL, tables=["cam_south", "cam_north"])
        assert subset.tables == ("cam_south", "cam_north")
        assert db.executor_for("cam_east").materialized_categories() == []
        with pytest.raises(KeyError, match="cam_west"):
            db.execute(FANOUT_SQL, tables=["cam_west"])

    def test_empty_tables_list_rejected(self, db):
        with pytest.raises(ValueError, match="at least one"):
            db.execute(FANOUT_SQL, tables=[])

    def test_tables_with_single_table_from_rejected(self, db):
        # tables=[...] must never silently answer a FROM cam_a query with
        # another shard's rows.
        with pytest.raises(ValueError, match="requires FROM all_cameras"):
            db.execute("SELECT * FROM cam_north "
                       "WHERE contains_object(komondor)",
                       tables=["cam_south"])

    def test_shards_priced_at_their_own_resolution(self, db):
        # A higher-resolution shard must not be priced at its neighbours'.
        db.attach("cam_hires", generate_corpus(
            (get_category("komondor"),), n_images=8,
            image_size=2 * TINY_SIZE, rng=np.random.default_rng(90),
            positive_rate=0.5))
        plans = db.explain(FANOUT_SQL, tables=["cam_north", "cam_hires"])
        # CAMERA pays per-pixel transform cost: the hi-res shard's selected
        # cascade must be priced at least as high as the lo-res shard's for
        # the same cascade choice, and the profilers must differ.
        assert db._profiler_for("cam_hires").source_resolution == 2 * TINY_SIZE
        assert db._profiler_for("cam_north").source_resolution == TINY_SIZE
        for plan in plans.values():
            assert plan.content_steps[0].cost_per_image_s > 0

    def test_explain_fanout_returns_per_shard_plans(self, db, cameras):
        plans = db.explain(FANOUT_SQL)
        assert set(plans) == set(cameras)
        for table, plan in plans.items():
            assert plan.table == table
            assert f"table={table!r}" in str(plan)
        # Nothing ran.
        for table in cameras:
            assert db.executor_for(table).materialized_categories() == []

    def test_per_shard_selectivity_feeds_each_plan(self, db, tiny_optimizer,
                                                   tiny_device):
        # One shard dense in positives, one almost empty: once labels are
        # materialized, each shard's plan must carry its own observed rate.
        db.attach("cam_sparse", make_corpus(20, seed=50, positive_rate=0.0))
        db.execute(FANOUT_SQL)
        plans = db.explain(FANOUT_SQL)
        for table in db.tables():
            observed = db.executor_for(table).observed_positive_rate("komondor")
            assert plans[table].content_steps[0].selectivity == \
                pytest.approx(observed)
        assert plans["cam_sparse"].content_steps[0].selectivity < \
            plans["cam_north"].content_steps[0].selectivity

    def test_fanout_on_empty_catalog_reports_no_corpus(self, tiny_optimizer,
                                                       tiny_device):
        database = connect(device=tiny_device, calibrate_target_fps=None)
        database.register_optimizer("komondor", tiny_optimizer)
        with pytest.raises(RuntimeError, match="no corpus"):
            database.execute(FANOUT_SQL)

    def test_fanout_limit_caps_merged_result(self, db, cameras):
        # Regression: LIMIT used to apply per shard, so the merged result
        # returned up to n x shards rows.
        unlimited = db.execute(FANOUT_SQL)
        assert len(unlimited) > 5
        limited = db.execute(f"{FANOUT_SQL} LIMIT 5")
        assert len(limited) == 5
        # Corpus order within shard, attachment order across shards: the
        # capped rows are a prefix of the unlimited merge.
        np.testing.assert_array_equal(limited.image_ids,
                                      unlimited.image_ids[:5])
        np.testing.assert_array_equal(limited.to_relation()["__table__"],
                                      unlimited.to_relation()["__table__"][:5])
        # per_table views are consistent with the merged rows.
        assert sum(len(limited.per_table(table))
                   for table in limited.tables) == 5

    def test_fanout_limit_larger_than_result_returns_everything(self, db):
        unlimited = db.execute(FANOUT_SQL)
        limited = db.execute(f"{FANOUT_SQL} LIMIT 1000")
        np.testing.assert_array_equal(limited.image_ids, unlimited.image_ids)

    def test_fanout_merges_shards_with_different_metadata_schemas(
            self, db, cameras):
        # Regression: the merge used to keep only the intersection of the
        # shard columns, silently dropping any camera-specific metadata.
        hires = make_corpus(8, seed=91)
        hires.metadata["weather"] = np.array(["sunny", "rain"] * 4)
        db.attach("cam_weather", hires)
        merged = db.execute(FANOUT_SQL)
        relation = merged.to_relation()
        assert "weather" in relation
        assert "location" in relation
        tables = relation["__table__"]
        # Shards lacking the column get a typed fill, never misalignment.
        assert set(relation["weather"][tables != "cam_weather"]) <= {""}
        weather_rows = relation["weather"][tables == "cam_weather"]
        assert set(weather_rows) <= {"sunny", "rain"}

    def test_detach_then_reattach_starts_from_clean_state(self, db, cameras):
        # Regression guard: reattaching the same table name must not leak
        # the old shard's store bytes, registrations or materialized labels.
        db.use_scenario("ongoing")
        db.execute("SELECT * FROM cam_north WHERE contains_object(komondor)")
        old_executor = db.executor_for("cam_north")
        assert old_executor.store.bytes_stored() > 0
        assert old_executor.store.registered_specs()
        global_before = db.catalog.store.total_bytes_stored()

        db.detach("cam_north")
        db.attach("cam_north", make_corpus(9, seed=92))
        executor = db.executor_for("cam_north")
        assert executor is not old_executor
        assert executor.materialized_categories() == []
        assert executor.store.bytes_stored() == 0
        assert executor.store.registered_specs() == []
        assert db.catalog.store.total_bytes_stored() < global_before
        # The fresh shard classifies from scratch -- nothing inherited.
        result = db.execute(
            "SELECT * FROM cam_north WHERE contains_object(komondor)")
        assert result.images_classified["komondor"] == 9


class TestSharedStoreBudget:
    def test_namespaces_share_one_budget(self, cameras, tiny_optimizer,
                                         tiny_device):
        budget = 2 * 18 * TINY_SIZE * TINY_SIZE * 3
        database = connect(cameras, device=tiny_device, scenario="camera",
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED,
                           store_budget=budget)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        merged = database.execute(FANOUT_SQL)
        root = database.catalog.store
        assert root.total_bytes_stored() <= budget
        # Eviction never changed results: every shard classified fully.
        for table, corpus in cameras.items():
            assert merged.images_classified[table]["komondor"] == len(corpus)

    def test_hot_namespace_evicts_itself_first(self):
        from repro.transforms.spec import TransformSpec
        gray = TransformSpec(8, "gray")    # 64 bytes/image
        rgb = TransformSpec(8, "rgb")      # 192 bytes/image
        small = TransformSpec(4, "gray")   # 16 bytes/image
        # Budget holds cold's gray (384) + hot's rgb (1152) exactly.
        root = RepresentationStore(byte_budget=6 * (64 + 192))
        cold = root.scoped("cam_cold")
        hot = root.scoped("cam_hot")
        images = np.zeros((6, TINY_SIZE, TINY_SIZE, 3))
        cold.add(gray, gray.apply_batch(images))
        hot.add(rgb, rgb.apply_batch(images))
        # The hot camera inserting more must evict its own LRU entry (rgb),
        # not the cold camera's representation.
        hot.add(small, small.apply_batch(images))
        assert gray in cold
        assert rgb not in hot
        assert small in hot
        assert root.evictions == 1

    def test_try_get_returns_none_on_miss(self):
        from repro.transforms.spec import TransformSpec
        store = RepresentationStore()
        spec = TransformSpec(8, "gray")
        assert store.try_get(spec) is None
        store.add(spec, np.zeros((2, 8, 8, 1)))
        assert store.try_get(spec) is not None

    def test_scoped_views_are_isolated(self):
        from repro.transforms.spec import TransformSpec
        root = RepresentationStore()
        a, b = root.scoped("a"), root.scoped("b")
        spec = TransformSpec(8, "gray")
        a.add(spec, np.zeros((3, 8, 8, 1)))
        assert spec in a and spec not in b
        assert a.rows(spec) == 3 and b.rows(spec) == 0
        b.register(spec)
        assert a.registered_specs() == []
        assert [s.name for s in b.registered_specs()] == [spec.name]
        a.clear()
        assert a.bytes_stored() == 0


class TestCatalogPersistence:
    def test_three_table_roundtrip_mid_ingest(self, db, cameras, tmp_path):
        db.use_scenario("ongoing")
        db.execute(FANOUT_SQL)  # classifies + registers + materializes reps
        batch = make_corpus(8, seed=60)
        db.ingest(batch.images, metadata=batch.metadata, content=batch.content,
                  table="cam_east")  # mid-ingest: cam_east has 8 fresh rows
        before = db.execute(FANOUT_SQL)
        assert before.images_classified["cam_east"]["komondor"] == 8

        db.save(tmp_path / "vdb")
        loaded = VisualDatabase.load(tmp_path / "vdb")

        # Scenario, tables and per-table corpora survive.
        assert loaded.scenario.name == "ongoing"
        assert loaded.tables() == db.tables()
        assert len(loaded.corpus_for("cam_east")) == 32
        # Store namespaces survive: registered specs and warm arrays per table.
        for table in loaded.tables():
            store = loaded.executor_for(table).store
            saved = db.executor_for(table).store
            assert {s.name for s in store.registered_specs()} == \
                {s.name for s in saved.registered_specs()}
            for spec in saved.specs():
                assert store.rows(spec) == saved.rows(spec)
        # Materialized labels survive: nothing is re-classified, rows match.
        after = loaded.execute(FANOUT_SQL)
        for table in cameras:
            assert after.images_classified[table]["komondor"] == 0
            np.testing.assert_array_equal(
                after.per_table(table).image_ids,
                before.per_table(table).image_ids)

    def test_store_arrays_warm_start_without_recompute(self, db, tmp_path,
                                                       monkeypatch):
        db.use_scenario("ongoing")
        db.execute(FANOUT_SQL)
        db.save(tmp_path / "vdb")
        loaded = VisualDatabase.load(tmp_path / "vdb")

        # A warm-started query must not transform a single image: stored
        # arrays came back from disk and labels are materialized.
        from repro.transforms import spec as spec_module

        def boom(self, images):
            raise AssertionError("representation recomputed after warm start")

        monkeypatch.setattr(spec_module.TransformSpec, "apply_batch", boom)
        result = loaded.execute(FANOUT_SQL)
        assert len(result) == len(db.execute(FANOUT_SQL))

    def test_store_bytes_cap_falls_back_to_recompute(self, db, tmp_path):
        db.use_scenario("ongoing")
        before = db.execute(FANOUT_SQL)
        db.save(tmp_path / "vdb", store_bytes_cap=0)  # no arrays persisted
        loaded = VisualDatabase.load(tmp_path / "vdb")
        for table in loaded.tables():
            assert loaded.executor_for(table).store.specs() == []
        # Results identical anyway: representations recompute on demand --
        # and materialized labels mean nothing needs re-classification.
        after = loaded.execute(FANOUT_SQL)
        for table in loaded.tables():
            np.testing.assert_array_equal(
                after.per_table(table).image_ids,
                before.per_table(table).image_ids)
            assert after.images_classified[table]["komondor"] == 0

    def test_multi_table_save_rejects_replacement_corpus(self, db, tmp_path):
        db.save(tmp_path / "vdb")
        with pytest.raises(ValueError, match="single-table"):
            VisualDatabase.load(tmp_path / "vdb",
                                corpus=make_corpus(10, seed=70))

    def test_store_cap_spent_on_globally_hottest_arrays(self, db, tmp_path):
        db.use_scenario("ongoing")
        db.execute("SELECT * FROM cam_north WHERE contains_object(komondor)")
        # cam_south queried last: its arrays are the globally hottest.
        db.execute("SELECT * FROM cam_south WHERE contains_object(komondor)")
        south_bytes = sum(array.nbytes for _, array in
                          db.executor_for("cam_south").store.arrays_by_recency())
        assert south_bytes > 0
        db.save(tmp_path / "vdb", store_bytes_cap=south_bytes)
        loaded = VisualDatabase.load(tmp_path / "vdb")
        # The cap went to the hottest shard, not the first-attached one.
        assert loaded.executor_for("cam_south").store.specs() != []
        assert loaded.executor_for("cam_north").store.specs() == []

    def test_v1_single_table_save_still_loads(self, tiny_optimizer,
                                              tiny_device, tmp_path):
        # Reconstruct the pre-catalog on-disk layout from a fresh save:
        # files at the root, a format-1 manifest with a top-level store
        # entry — the loader must map it onto the 'images' table.
        import json
        import shutil

        database = connect(make_corpus(16, seed=80), device=tiny_device,
                           scenario="camera", calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        sql = "SELECT * FROM images WHERE contains_object(komondor)"
        before = database.execute(sql)
        root = database.save(tmp_path / "vdb")

        manifest = json.loads((root / "database.json").read_text())
        [entry] = manifest.pop("tables")
        table_dir = root / entry["table_dir"]
        shutil.move(str(table_dir / "corpus.npz"), str(root / "corpus.npz"))
        shutil.move(str(table_dir / "materialized.npz"),
                    str(root / "materialized.npz"))
        shutil.rmtree(root / "tables")
        manifest["format_version"] = 1
        manifest["corpus_file"] = "corpus.npz"
        manifest["materialized"] = entry["materialized"]
        manifest["store"] = {"byte_budget": None,
                             "registered_specs": entry["registered_specs"]}
        (root / "database.json").write_text(json.dumps(manifest))

        loaded = VisualDatabase.load(root)
        assert loaded.tables() == ["images"]
        after = loaded.execute(sql)
        np.testing.assert_array_equal(after.image_ids, before.image_ids)
        assert after.images_classified["komondor"] == 0  # labels survived
