"""Concurrent use of one VisualDatabase: parallel execute() racing ingest and
retention, plus the chunk-boundary cancellation hook the serving layer's
per-query timeouts are built on."""

import threading
import time

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.costs.scenario import CAMERA
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import connect
from repro.db.retention import RetentionPolicy
from repro.query.ast import QueryTimeoutError
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
CONTENT_SQL = "SELECT * FROM cam_a WHERE contains_object(komondor)"


def make_corpus(n_images: int, seed: int):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.9)


@pytest.fixture()
def db(tiny_optimizer, tiny_device):
    database = connect(
        {"cam_a": make_corpus(30, seed=21), "cam_b": make_corpus(20, seed=22)},
        device=tiny_device, scenario=CAMERA, calibrate_target_fps=None,
        default_constraints=CONSTRAINED)
    database.register_optimizer("komondor", tiny_optimizer,
                                reference_params=REFERENCE_PARAMS)
    return database


class TestConcurrentExecute:
    def test_threads_query_while_ingest_and_retention_run(self, db):
        db.set_retention("cam_a", RetentionPolicy(max_rows=50))
        batch = make_corpus(5, seed=23)
        stop = threading.Event()
        errors = []

        def query_loop(seed: int):
            queries = [CONTENT_SQL + " LIMIT 5",
                       "SELECT count(*) FROM cam_a",
                       "SELECT * FROM all_cameras "
                       "WHERE contains_object(komondor) LIMIT 4",
                       "SELECT avg(timestamp) FROM cam_b GROUP BY location"]
            try:
                for step in range(8):
                    sql = queries[(seed + step) % len(queries)]
                    results = db.execute(sql)
                    assert len(results.fetchall()) == len(results)
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        def churn():
            while not stop.is_set():
                db.ingest(batch.images, metadata=batch.metadata,
                          content=batch.content, table="cam_a")
                db.retain("cam_a")
                time.sleep(0.005)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            threads = [threading.Thread(target=query_loop, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
        finally:
            stop.set()
            churner.join(timeout=30)
        assert errors == []
        assert len(db.corpus_for("cam_a")) <= 50 + len(batch)

    def test_concurrent_queries_agree_with_serial(self, db):
        expected = [row["image_id"] for row in db.execute(CONTENT_SQL)]
        outcomes = [None] * 4

        def run(slot: int):
            outcomes[slot] = [row["image_id"]
                              for row in db.execute(CONTENT_SQL)]

        threads = [threading.Thread(target=run, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert outcomes == [expected] * 4


class TestCancellation:
    def test_cancel_checked_at_start_and_chunk_boundaries(self, db):
        calls = []
        db.execute(CONTENT_SQL, cancel=lambda: calls.append(1))
        # Once before execution starts, once before each chunk.
        assert len(calls) >= 2

    def test_cancel_raising_at_start_aborts(self, db):
        def cancel():
            raise QueryTimeoutError("deadline passed while queued")

        with pytest.raises(QueryTimeoutError):
            db.execute(CONTENT_SQL, cancel=cancel)

    def test_cancel_aborts_between_chunks(self, db):
        state = {"calls": 0}

        def cancel():
            state["calls"] += 1
            if state["calls"] > 1:
                raise QueryTimeoutError("aborted at a chunk boundary")

        with pytest.raises(QueryTimeoutError):
            db.execute(CONTENT_SQL, cancel=cancel)

    def test_database_usable_after_abort(self, db):
        def cancel():
            raise QueryTimeoutError("boom")

        with pytest.raises(QueryTimeoutError):
            db.execute(CONTENT_SQL, cancel=cancel)
        results = db.execute(CONTENT_SQL)
        assert len(results) == len(db.execute(CONTENT_SQL))

    def test_fanout_cancel_propagates(self, db):
        def cancel():
            raise QueryTimeoutError("boom")

        with pytest.raises(QueryTimeoutError):
            db.execute("SELECT * FROM all_cameras "
                       "WHERE contains_object(komondor)", cancel=cancel)

    def test_cancel_none_unchunked_results_identical(self, db):
        plain = db.execute(CONTENT_SQL)
        chunked = db.execute(CONTENT_SQL, cancel=lambda: None)
        assert [row["image_id"] for row in plain] == \
            [row["image_id"] for row in chunked]
