"""End-to-end tests for the VisualDatabase facade.

Covers the acceptance path: connect -> register_predicate -> execute ->
save -> load -> execute, plus explain() plan ordering, lazy registration and
scenario switching.
"""

import numpy as np
import pytest

from repro.core.optimizer import TahomaConfig
from repro.core.selector import UserConstraints
from repro.core.spec import ArchitectureSpec
from repro.core.trainer import TrainingConfig
from repro.costs.scenario import CAMERA
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import VisualDatabase, connect
from repro.query.processor import QueryProcessor
from repro.query.sql import parse_query
from repro.transforms.spec import TransformSpec
from tests.conftest import TINY_SIZE

SQL = ("SELECT * FROM images WHERE location = 'detroit' "
       "AND contains_object(komondor)")
CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus((get_category("komondor"),), n_images=30,
                           image_size=TINY_SIZE, rng=np.random.default_rng(9),
                           positive_rate=0.9)


@pytest.fixture()
def db(corpus, tiny_optimizer, tiny_device):
    database = connect(corpus, device=tiny_device, scenario=CAMERA,
                       calibrate_target_fps=None,
                       default_constraints=CONSTRAINED)
    database.register_optimizer("komondor", tiny_optimizer,
                                reference_params=REFERENCE_PARAMS)
    return database


class TestConnect:
    def test_connect_returns_database(self, corpus):
        database = connect(corpus)
        assert isinstance(database, VisualDatabase)
        assert len(database.corpus) == len(corpus)

    def test_query_without_corpus_rejected(self, tiny_optimizer):
        database = connect()
        database.register_optimizer("komondor", tiny_optimizer)
        with pytest.raises(RuntimeError):
            database.execute("SELECT * FROM images WHERE contains_object(komondor)")

    def test_duplicate_predicate_rejected(self, db, tiny_optimizer):
        with pytest.raises(ValueError):
            db.register_optimizer("komondor", tiny_optimizer)


class TestExecute:
    def test_paper_query_matches_raw_processor(self, db, corpus, tiny_optimizer,
                                               camera_profiler):
        results = db.execute(SQL)
        raw = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                             camera_profiler).execute(
            parse_query(SQL, constraints=CONSTRAINED))
        np.testing.assert_array_equal(results.image_ids, raw.selected_indices)
        assert all(row["location"] == "detroit" for row in results)

    def test_default_constraints_applied(self, db, camera_profiler,
                                         tiny_optimizer):
        results = db.execute(SQL)
        expected = tiny_optimizer.select(camera_profiler, CONSTRAINED)
        assert results.cascades_used["komondor"].name == expected.name

    def test_results_stream_with_fetchmany(self, db):
        results = db.execute(
            "SELECT * FROM images WHERE contains_object(komondor)")
        seen = []
        while True:
            batch = results.fetchmany(4)
            if not batch:
                break
            assert len(batch) <= 4
            seen.extend(row["image_id"] for row in batch)
        assert seen == list(results.image_ids)

    def test_limit_via_sql(self, db):
        limited = db.execute(
            "SELECT * FROM images WHERE contains_object(komondor) LIMIT 2")
        assert len(limited) <= 2

    def test_unknown_predicate_raises(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT * FROM images WHERE contains_object(zebra)")


class TestExplain:
    def test_explain_reports_choice_without_classifying(self, db):
        plan = db.explain(SQL)
        assert plan.categories == ("komondor",)
        step = plan.content_steps[0]
        assert step.evaluation.name
        assert 0.0 <= step.selectivity <= 1.0
        assert step.cost_per_image_s > 0
        # Nothing ran: no virtual column was materialized.
        assert db.executor.materialized_categories() == []
        text = str(plan)
        assert "contains_object(komondor)" in text
        assert "location" in text

    def test_explain_orders_content_steps_by_rank(self, db, tiny_optimizer):
        # Same optimizer under a second name: ranks tie, order is stable;
        # the invariant is that ranks are sorted ascending.
        db.register_optimizer("komondor_b", tiny_optimizer,
                              reference_params=REFERENCE_PARAMS)
        plan = db.explain("SELECT * FROM images WHERE "
                          "contains_object(komondor) AND "
                          "contains_object(komondor_b)")
        ranks = [step.rank for step in plan.content_steps]
        assert ranks == sorted(ranks)
        assert set(plan.categories) == {"komondor", "komondor_b"}


class TestScenarios:
    def test_use_scenario_by_name_changes_pricing(self, db):
        camera_plan = db.explain(SQL)
        db.use_scenario("infer_only")
        infer_plan = db.explain(SQL)
        assert camera_plan.scenario_name == "camera"
        assert infer_plan.scenario_name == "infer_only"
        # CAMERA pays a transform cost INFER_ONLY does not.
        assert (camera_plan.content_steps[0].cost_per_image_s
                >= infer_plan.content_steps[0].cost_per_image_s)

    def test_use_scenario_accepts_profiler(self, db, camera_profiler):
        db.use_scenario(camera_profiler)
        assert db.profiler is camera_profiler
        assert db.scenario.name == "camera"

    def test_unknown_scenario_name(self, db):
        with pytest.raises(KeyError):
            db.use_scenario("underwater")

    def test_materialized_labels_always_match_reported_cascade(self, db, corpus):
        """Across scenario/constraint switches, served labels must come from
        the cascade reported in ``cascades_used`` — never a stale column."""
        sql = "SELECT * FROM images WHERE contains_object(komondor)"
        first = db.execute(sql)
        assert first.images_classified["komondor"] == len(corpus)
        db.use_scenario("infer_only")
        second = db.execute(sql)
        same_cascade = (second.cascades_used["komondor"].name
                        == first.cascades_used["komondor"].name)
        # Same cascade -> column reused; different cascade -> re-classified.
        assert second.images_classified["komondor"] == (
            0 if same_cascade else len(corpus))
        # Repeating under the now-current selection always hits the column.
        third = db.execute(sql)
        assert third.images_classified["komondor"] == 0

    def test_constraint_change_never_serves_stale_labels(self, db, corpus,
                                                         camera_profiler,
                                                         tiny_optimizer):
        sql = "SELECT * FROM images WHERE contains_object(komondor)"
        loose = UserConstraints(max_accuracy_loss=0.5)
        strict = UserConstraints(max_accuracy_loss=0.0)
        loose_choice = tiny_optimizer.select(camera_profiler, loose)
        strict_choice = tiny_optimizer.select(camera_profiler, strict)
        if loose_choice.name == strict_choice.name:
            pytest.skip("tiny optimizer selects one cascade for both budgets")
        first = db.execute(sql, constraints=loose)
        second = db.execute(sql, constraints=strict)
        assert first.cascades_used["komondor"].name == loose_choice.name
        assert second.cascades_used["komondor"].name == strict_choice.name
        # The strict query must not reuse the loose cascade's column.
        assert second.images_classified["komondor"] == len(corpus)


class TestRegisterPredicate:
    def _tiny_config(self):
        return TahomaConfig(
            architectures=(ArchitectureSpec(1, 4, 8),),
            transforms=(TransformSpec(8, "gray"), TransformSpec(8, "rgb")),
            precision_targets=(0.9,),
            max_depth=2,
            training=TrainingConfig(epochs=1, batch_size=16))

    def test_register_trains_and_answers(self, corpus, tiny_splits, tiny_device):
        database = connect(corpus, device=tiny_device, scenario=CAMERA,
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_predicate("komondor", tiny_splits,
                                    config=self._tiny_config(),
                                    reference_params={"epochs": 1,
                                                      **REFERENCE_PARAMS})
        assert database.is_trained("komondor")
        results = database.execute(SQL)
        assert "contains_komondor" in results.columns
        assert results.images_classified["komondor"] > 0

    def test_lazy_registration_defers_training(self, corpus, tiny_splits,
                                               tiny_device):
        database = connect(corpus, device=tiny_device, scenario=CAMERA,
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_predicate("komondor", tiny_splits,
                                    config=self._tiny_config(),
                                    train_reference=False, lazy=True)
        assert database.predicates() == ["komondor"]
        assert not database.is_trained("komondor")
        results = database.execute(
            "SELECT * FROM images WHERE contains_object(komondor)")
        assert database.is_trained("komondor")
        assert results.images_classified["komondor"] == len(corpus)


class TestNewDialect:
    """Projection, boolean trees, aggregates, ORDER BY through the facade."""

    def test_bare_scan_with_limit(self, db, corpus):
        results = db.execute("SELECT * FROM images LIMIT 5")
        assert len(results) == 5
        np.testing.assert_array_equal(results.image_ids, np.arange(5))
        # Nothing was classified for a pure scan.
        assert results.images_classified == {}

    def test_projection_restricts_columns(self, db):
        results = db.execute("SELECT image_id, location FROM images LIMIT 3")
        assert results.columns == ["image_id", "location"]
        assert set(results.row(0)) == {"image_id", "location"}

    def test_unknown_projection_column_raises_query_error(self, db):
        from repro.db import QueryError

        with pytest.raises(QueryError, match="nope"):
            db.execute("SELECT nope FROM images LIMIT 1")

    def test_type_mismatch_comparison_raises_query_error(self, db):
        from repro.db import QueryError

        with pytest.raises(QueryError, match="location"):
            db.execute("SELECT * FROM images WHERE location = 5")
        with pytest.raises(QueryError, match="camera_id"):
            db.execute("SELECT * FROM images WHERE camera_id = 'five'")

    def test_or_classifies_only_undecided_rows(self, db, corpus):
        # The cheap disjunct decides its rows; the cascade must only
        # classify the rows the metadata predicate left undecided.
        results = db.execute("SELECT * FROM images "
                             "WHERE location = 'detroit' "
                             "OR contains_object(komondor)")
        n_detroit = int((corpus.metadata["location"] == "detroit").sum())
        assert results.images_classified["komondor"] == len(corpus) - n_detroit
        # Every Detroit row is selected regardless of its label.
        detroit_ids = np.where(corpus.metadata["location"] == "detroit")[0]
        assert set(detroit_ids) <= set(results.image_ids)

    def test_or_matches_row_wise_reference(self, db, corpus):
        results = db.execute("SELECT * FROM images "
                             "WHERE location = 'detroit' "
                             "OR contains_object(komondor)")
        # Reference: evaluate the full column with the conjunctive path,
        # then OR row-wise.
        labels = db.execute("SELECT * FROM images "
                            "WHERE contains_object(komondor)")
        positive = set(labels.image_ids)
        expected = [i for i in range(len(corpus))
                    if corpus.metadata["location"][i] == "detroit"
                    or i in positive]
        np.testing.assert_array_equal(np.sort(results.image_ids), expected)

    def test_not_inverts_content_predicate(self, db, corpus):
        selected = db.execute(
            "SELECT * FROM images WHERE contains_object(komondor)")
        inverted = db.execute(
            "SELECT * FROM images WHERE NOT contains_object(komondor)")
        assert (set(selected.image_ids) | set(inverted.image_ids)
                == set(range(len(corpus))))
        assert not set(selected.image_ids) & set(inverted.image_ids)

    def test_order_by_metadata_desc(self, db, corpus):
        results = db.execute("SELECT * FROM images ORDER BY timestamp DESC "
                             "LIMIT 4")
        timestamps = [row["timestamp"] for row in results]
        assert timestamps == sorted(timestamps, reverse=True)
        assert timestamps[0] == corpus.metadata["timestamp"].max()

    def test_order_by_disables_early_stop(self, db, corpus):
        # LIMIT under ORDER BY must consider every candidate: the last row
        # in corpus order has the largest timestamp, so an early-stopped
        # scan could never return it.
        results = db.execute("SELECT * FROM images ORDER BY timestamp DESC "
                             "LIMIT 1")
        assert results.row(0)["timestamp"] == corpus.metadata["timestamp"].max()

    def test_global_count(self, db, corpus):
        results = db.execute("SELECT COUNT(*) FROM images")
        assert len(results) == 1
        assert results.row(0) == {"count(*)": len(corpus)}

    def test_grouped_count_matches_row_wise(self, db, corpus):
        results = db.execute("SELECT location, COUNT(*) FROM images "
                             "WHERE contains_object(komondor) "
                             "GROUP BY location")
        rows = db.execute("SELECT * FROM images "
                          "WHERE contains_object(komondor)")
        reference = {}
        for row in rows:
            reference[row["location"]] = reference.get(row["location"], 0) + 1
        assert {row["location"]: row["count(*)"]
                for row in results} == reference

    def test_aggregate_result_has_no_image_ids(self, db):
        from repro.db import QueryError

        results = db.execute("SELECT COUNT(*) FROM images")
        with pytest.raises(QueryError):
            results.image_ids

    def test_explain_renders_new_stages(self, db):
        plan = db.explain("SELECT location, COUNT(*) FROM images "
                          "WHERE location = 'detroit' "
                          "OR contains_object(komondor) "
                          "GROUP BY location ORDER BY COUNT(*) DESC LIMIT 3")
        text = str(plan)
        assert "OR" in text
        assert "aggregate count(*) group by location" in text
        assert "order by count(*) DESC" in text
        assert "limit    3" in text
        assert not plan.allow_early_stop


class TestFanoutAggregates:
    @pytest.fixture()
    def multi_db(self, tiny_optimizer, tiny_device):
        # Different sizes and positive rates per shard so per-shard averages
        # differ (an average-of-averages bug would be visible).
        shards = {
            f"cam_{index}": generate_corpus(
                (get_category("komondor"),), n_images=12 + 8 * index,
                image_size=TINY_SIZE, rng=np.random.default_rng(40 + index),
                positive_rate=0.3 + 0.2 * index)
            for index in range(3)
        }
        database = connect(shards, device=tiny_device, scenario=CAMERA,
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        database.register_optimizer("komondor2", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        return database

    def test_acceptance_grouped_count_over_fanout(self, multi_db):
        """The ISSUE acceptance query: per-shard partials whose merge equals
        the row-wise reference."""
        results = multi_db.execute(
            "SELECT location, COUNT(*) FROM all_cameras "
            "WHERE contains_object(komondor) OR contains_object(komondor2) "
            "GROUP BY location ORDER BY COUNT(*) DESC LIMIT 3")
        # Row-wise reference through the conjunctive (seed) path: komondor2
        # is the same optimizer, so the disjunction selects exactly the
        # komondor-positive rows of every shard.
        reference: dict[str, int] = {}
        for table in multi_db.tables():
            rows = multi_db.execute(f"SELECT * FROM {table} "
                                    "WHERE contains_object(komondor)")
            for row in rows:
                reference[row["location"]] = reference.get(row["location"],
                                                           0) + 1
        expected = sorted(reference.items(), key=lambda kv: -kv[1])[:3]
        got = [(row["location"], row["count(*)"]) for row in results]
        assert sorted(got, key=lambda kv: (-kv[1], kv[0])) == sorted(
            expected, key=lambda kv: (-kv[1], kv[0]))
        counts = [count for _, count in got]
        assert counts == sorted(counts, reverse=True)
        # Per-shard provenance came along with the merged groups.
        assert set(results.plans) == set(multi_db.tables())
        assert set(results.images_classified) == set(multi_db.tables())

    def test_fanout_avg_is_exact_sum_count_merge(self, multi_db):
        results = multi_db.execute("SELECT AVG(timestamp) FROM all_cameras")
        merged = np.concatenate(
            [multi_db.corpus_for(table).metadata["timestamp"]
             for table in multi_db.tables()])
        assert results.row(0)["avg(timestamp)"] == pytest.approx(
            merged.mean())
        # The wrong merge (average of per-shard averages) differs here.
        shard_means = [multi_db.corpus_for(t).metadata["timestamp"].mean()
                       for t in multi_db.tables()]
        assert np.mean(shard_means) != pytest.approx(merged.mean(), rel=1e-12)

    def test_fanout_min_max_count(self, multi_db):
        results = multi_db.execute(
            "SELECT COUNT(*), MIN(timestamp), MAX(timestamp) "
            "FROM all_cameras")
        merged = np.concatenate(
            [multi_db.corpus_for(table).metadata["timestamp"]
             for table in multi_db.tables()])
        row = results.row(0)
        assert row["count(*)"] == merged.size
        assert row["min(timestamp)"] == pytest.approx(merged.min())
        assert row["max(timestamp)"] == pytest.approx(merged.max())

    def test_fanout_order_by_sorts_merged_rows(self, multi_db):
        results = multi_db.execute(
            "SELECT * FROM all_cameras ORDER BY timestamp DESC LIMIT 5")
        timestamps = [row["timestamp"] for row in results]
        assert len(results) == 5
        assert timestamps == sorted(timestamps, reverse=True)
        merged = np.concatenate(
            [multi_db.corpus_for(table).metadata["timestamp"]
             for table in multi_db.tables()])
        assert timestamps[0] == merged.max()


class TestPersistence:
    def test_save_load_roundtrip_identical_results(self, db, tmp_path):
        before = db.execute(SQL)
        root = db.save(tmp_path / "vdb")

        reloaded = VisualDatabase.load(root)
        assert reloaded.scenario.name == "camera"
        assert reloaded.predicates() == db.predicates()
        assert len(reloaded.corpus) == len(db.corpus)
        after = reloaded.execute(SQL)
        np.testing.assert_array_equal(after.image_ids, before.image_ids)
        assert after.columns == before.columns
        np.testing.assert_array_equal(
            after.to_relation()["contains_komondor"],
            before.to_relation()["contains_komondor"])

    def test_save_without_corpus_requires_one_at_load(self, db, corpus, tmp_path):
        root = db.save(tmp_path / "vdb", include_corpus=False)
        reloaded = VisualDatabase.load(root, corpus=corpus)
        assert len(reloaded.execute(SQL)) == len(db.execute(SQL))

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            VisualDatabase.load(tmp_path)

    def test_roundtrip_preserves_constraints_and_resolutions(self, db, tmp_path):
        root = db.save(tmp_path / "vdb")
        reloaded = VisualDatabase.load(root)
        assert reloaded.default_constraints == CONSTRAINED
        assert reloaded.cost_resolution == db.cost_resolution
        assert reloaded.profiler.source_resolution == db.profiler.source_resolution


class TestLifecycle:
    def test_close_is_idempotent(self, db):
        assert db.closed is False
        db.close()
        assert db.closed is True
        db.close()

    def test_queries_after_close_raise(self, db):
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.execute(SQL)
        with pytest.raises(RuntimeError, match="closed"):
            db.explain(SQL)

    def test_mutations_after_close_raise(self, db, corpus):
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.ingest(corpus.images[:2], metadata={
                name: column[:2]
                for name, column in corpus.metadata.items()})
        with pytest.raises(RuntimeError, match="closed"):
            db.attach("late", corpus)

    def test_close_detaches_tables_and_clears_store(self, db):
        db.execute(SQL)  # materialize some state first
        db.close()
        assert db.tables() == []
        assert db.catalog.store.total_bytes_stored() == 0

    def test_context_manager_closes(self, corpus):
        with connect(corpus, calibrate_target_fps=None) as database:
            assert database.closed is False
        assert database.closed is True

    def test_entering_closed_database_raises(self, corpus):
        database = connect(corpus, calibrate_target_fps=None)
        database.close()
        with pytest.raises(RuntimeError, match="closed"):
            with database:
                pass


class TestPlanSerialization:
    def test_to_dict_is_json_ready(self, db):
        import json

        plan = db.explain(SQL)
        payload = plan.to_dict()
        json.dumps(payload)
        assert payload["table"] == "images"
        assert payload["scenario"] == "camera"
        assert payload["metadata_steps"] == [
            {"op": "filter", "column": "location", "operator": "==",
             "value": "detroit"}]
        step = payload["content_steps"][0]
        assert step["category"] == "komondor"
        assert step["depth"] >= 1
        assert step["cost_per_image_s"] > 0

    def test_to_dict_covers_projection_and_aggregates(self, db):
        payload = db.explain("SELECT count(*), avg(timestamp) FROM images "
                             "GROUP BY location ORDER BY location "
                             "LIMIT 3").to_dict()
        assert payload["is_aggregate"] is True
        assert payload["group_by"] == ["location"]
        assert payload["order_by"] == [{"key": "location", "ascending": True}]
        assert payload["limit"] == 3
