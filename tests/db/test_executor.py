"""Tests for the query executor: shared store, materialization, LIMIT."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db.executor import QueryExecutor
from repro.db.planner import QueryPlanner
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query
from tests.conftest import TINY_SIZE


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus((get_category("komondor"),), n_images=30,
                           image_size=TINY_SIZE, rng=np.random.default_rng(77),
                           positive_rate=0.9)


@pytest.fixture()
def planner(tiny_optimizer, camera_profiler):
    # The same optimizer registered under two names lets tests issue
    # two-content-predicate queries without training a second model pool.
    return QueryPlanner({"komondor": tiny_optimizer, "komondor2": tiny_optimizer},
                        camera_profiler)


CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)


class TestSharedRepresentationStore:
    def test_store_persists_across_queries(self, corpus, planner):
        executor = QueryExecutor(corpus)
        assert len(executor.store) == 0
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        executor.execute(plan)
        n_after_first = len(executor.store)
        assert n_after_first > 0
        # Re-running after invalidating labels must not add representations:
        # the full-corpus representations are already materialized.
        executor.invalidate()
        executor.execute(plan)
        assert len(executor.store) == n_after_first

    def test_representations_shared_across_predicates(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),
                                ContainsObject("komondor2")),
            constraints=CONSTRAINED))
        result = executor.execute(plan)
        # Both predicates use the same cascade, hence the same representations;
        # the store holds one full-corpus copy per representation, not two.
        transforms = {model.transform.name
                      for step in plan.content_steps
                      for model in step.evaluation.cascade.models}
        assert len(executor.store) == len(transforms)
        # Identical optimizers must agree row by row.
        np.testing.assert_array_equal(
            result.relation["contains_komondor"],
            result.relation["contains_komondor2"])

    def test_broad_queries_materialize_full_corpus(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        executor.execute(plan)
        assert len(executor.store) > 0
        for spec in executor.store.specs():
            assert executor.store.get(spec).shape[0] == len(corpus)

    def test_narrow_queries_do_not_bloat_the_store(self, corpus, planner):
        # 'detroit' selects roughly a third of the corpus, below the default
        # 50% materialization threshold: the candidate rows are transformed
        # for the cascade but no corpus-wide representation is cached.
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        result = executor.execute(plan)
        assert result.images_classified["komondor"] > 0
        assert len(executor.store) == 0

    def test_narrow_queries_slice_already_stored_representations(self, corpus,
                                                                 planner):
        executor = QueryExecutor(corpus)
        broad = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        executor.execute(broad)
        n_stored = len(executor.store)
        executor.invalidate()
        narrow = planner.plan(Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        executor.execute(narrow)
        # The warm store was reused, not extended.
        assert len(executor.store) == n_stored


class TestMaterializedColumns:
    def test_rows_never_reclassified(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        first = executor.execute(plan)
        second = executor.execute(plan)
        assert first.images_classified["komondor"] == len(corpus)
        assert second.images_classified["komondor"] == 0
        np.testing.assert_array_equal(first.selected_indices,
                                      second.selected_indices)

    def test_invalidate_single_category(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        executor.execute(plan)
        executor.invalidate("komondor")
        assert executor.materialized_categories() == []
        assert executor.execute(plan).images_classified["komondor"] == len(corpus)

    def test_second_predicate_sees_shrunken_candidate_set(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),
                                ContainsObject("komondor2")),
            constraints=CONSTRAINED))
        result = executor.execute(plan)
        first_cat, second_cat = plan.categories
        assert result.images_classified[first_cat] == len(corpus)
        # The second predicate only classifies rows the first let through.
        assert (result.images_classified[second_cat]
                <= result.images_classified[first_cat])


class TestLimit:
    def test_limit_truncates_selected_rows(self, corpus, planner):
        executor = QueryExecutor(corpus)
        unlimited = executor.execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED)))
        if len(unlimited) < 2:
            pytest.skip("corpus produced too few positives to exercise LIMIT")
        limit = len(unlimited) - 1
        limited = executor.execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED, limit=limit)))
        assert len(limited) == limit
        np.testing.assert_array_equal(limited.selected_indices,
                                      unlimited.selected_indices[:limit])
        assert len(limited.relation) == limit

    def test_limit_larger_than_result_is_noop(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED, limit=10_000))
        assert len(executor.execute(plan)) <= 10_000

    def test_limit_zero_returns_nothing(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            limit=0))
        assert len(executor.execute(plan)) == 0

    def test_limit_zero_classifies_nothing(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED, limit=0))
        result = executor.execute(plan)
        assert len(result) == 0
        assert result.images_classified["komondor"] == 0

    def test_limit_early_stop_with_two_content_predicates(self, corpus,
                                                          planner):
        # Regression: chunked early-stop must apply per chunk across *all*
        # content steps — the second predicate only sees survivors of the
        # first, and neither sweeps the corpus once the limit is satisfied.
        executor = QueryExecutor(corpus, min_limit_chunk=4)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),
                                ContainsObject("komondor2")),
            constraints=CONSTRAINED, limit=1))
        result = executor.execute(plan)
        first_cat, second_cat = plan.categories
        assert (result.images_classified[second_cat]
                <= result.images_classified[first_cat])
        if len(result) == 1:
            assert result.images_classified[first_cat] < len(corpus)
            unlimited = QueryExecutor(corpus).execute(planner.plan(Query(
                content_predicates=(ContainsObject("komondor"),
                                    ContainsObject("komondor2")),
                constraints=CONSTRAINED)))
            np.testing.assert_array_equal(result.selected_indices,
                                          unlimited.selected_indices[:1])

    def test_limit_zero_with_two_content_predicates(self, corpus, planner):
        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),
                                ContainsObject("komondor2")),
            constraints=CONSTRAINED, limit=0))
        result = executor.execute(plan)
        assert len(result) == 0
        assert all(count == 0 for count in result.images_classified.values())

    def test_limit_stops_classifying_early(self, corpus, planner):
        # Small chunks so the 30-image corpus spans several of them: once a
        # chunk yields enough survivors, later chunks are never classified.
        executor = QueryExecutor(corpus, min_limit_chunk=4)
        plan = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED, limit=1))
        result = executor.execute(plan)
        if len(result) == 1:
            assert result.images_classified["komondor"] < len(corpus)
        # And the rows returned are the first survivors in corpus order.
        executor_full = QueryExecutor(corpus)
        unlimited = executor_full.execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED)))
        np.testing.assert_array_equal(result.selected_indices,
                                      unlimited.selected_indices[:1])


class TestScenarioSwitchKeying:
    def test_labels_keyed_by_producing_cascade(self, corpus, tiny_optimizer,
                                               camera_profiler,
                                               infer_only_profiler):
        # Regression: materialized labels are keyed by (category, cascade);
        # a scenario/constraint switch that selects a different cascade must
        # re-classify, and switching back must serve the original labels.
        executor = QueryExecutor(corpus)
        planner_a = QueryPlanner({"komondor": tiny_optimizer}, camera_profiler)
        planner_b = QueryPlanner({"komondor": tiny_optimizer},
                                 infer_only_profiler)
        query = Query(content_predicates=(ContainsObject("komondor"),),
                      constraints=CONSTRAINED)
        loose = Query(content_predicates=(ContainsObject("komondor"),),
                      constraints=UserConstraints())
        plan_a = planner_a.plan(query)
        plan_b = next((plan for plan in (planner_b.plan(query),
                                         planner_a.plan(loose),
                                         planner_b.plan(loose))
                       if (plan.content_steps[0].evaluation.cascade.name
                           != plan_a.content_steps[0].evaluation.cascade.name)),
                      None)
        if plan_b is None:
            pytest.skip("all scenario/constraint combinations selected the "
                        "same cascade")
        first = executor.execute(plan_a)
        assert first.images_classified["komondor"] == len(corpus)
        switched = executor.execute(plan_b)
        assert switched.images_classified["komondor"] == len(corpus)
        back = executor.execute(plan_a)
        assert back.images_classified["komondor"] == 0
        np.testing.assert_array_equal(back.selected_indices,
                                      first.selected_indices)


class TestBareScan:
    def test_no_predicates_returns_all_rows(self, corpus, planner):
        executor = QueryExecutor(corpus)
        result = executor.execute(planner.plan(Query()))
        assert len(result) == len(corpus)
        np.testing.assert_array_equal(result.selected_indices,
                                      np.arange(len(corpus)))

    def test_scan_with_limit(self, corpus, planner):
        executor = QueryExecutor(corpus)
        result = executor.execute(planner.plan(Query(limit=3)))
        np.testing.assert_array_equal(result.selected_indices, [0, 1, 2])


class TestBooleanTrees:
    def _tree_query(self, *, where, **kwargs):
        return Query(where=where, constraints=CONSTRAINED, **kwargs)

    def test_or_classifies_only_undecided_rows(self, corpus, planner):
        from repro.query.ast import OrExpr, PredicateExpr

        executor = QueryExecutor(corpus)
        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            PredicateExpr(ContainsObject("komondor"))))
        plan = planner.plan(self._tree_query(where=where))
        assert plan.predicate_tree is not None
        result = executor.execute(plan)
        n_detroit = int((corpus.metadata["location"] == "detroit").sum())
        # The metadata disjunct costs nothing, so it runs first and decides
        # its rows; the cascade touches only the rest.
        assert result.images_classified["komondor"] == len(corpus) - n_detroit

    def test_or_result_matches_row_wise_reference(self, corpus, planner):
        from repro.query.ast import OrExpr, PredicateExpr

        executor = QueryExecutor(corpus)
        conjunctive = planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))
        positive = set(executor.execute(conjunctive).selected_indices)
        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            PredicateExpr(ContainsObject("komondor"))))
        result = QueryExecutor(corpus).execute(
            planner.plan(self._tree_query(where=where)))
        expected = [i for i in range(len(corpus))
                    if corpus.metadata["location"][i] == "detroit"
                    or i in positive]
        np.testing.assert_array_equal(np.sort(result.selected_indices),
                                      expected)

    def test_not_complements_selection(self, corpus, planner):
        from repro.query.ast import NotExpr, PredicateExpr

        executor = QueryExecutor(corpus)
        selected = executor.execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED))).selected_indices
        inverted = executor.execute(planner.plan(self._tree_query(
            where=NotExpr(PredicateExpr(ContainsObject("komondor")))))
        ).selected_indices
        assert set(selected) | set(inverted) == set(range(len(corpus)))
        assert not set(selected) & set(inverted)

    def test_and_inside_or_short_circuits(self, corpus, planner):
        from repro.query.ast import AndExpr, OrExpr, PredicateExpr

        executor = QueryExecutor(corpus)
        # (location = detroit AND contains) OR (location = seattle): the
        # cascade only ever sees Detroit rows — seattle rows are decided by
        # the cheap branch and the rest fail both.
        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "seattle")),
            AndExpr((
                PredicateExpr(MetadataPredicate("location", "==", "detroit")),
                PredicateExpr(ContainsObject("komondor"))))))
        result = executor.execute(planner.plan(self._tree_query(where=where)))
        n_detroit = int((corpus.metadata["location"] == "detroit").sum())
        assert result.images_classified["komondor"] <= n_detroit

    def test_tree_limit_early_stop_matches_prefix(self, corpus, planner):
        from repro.query.ast import OrExpr, PredicateExpr

        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            PredicateExpr(ContainsObject("komondor"))))
        unlimited = QueryExecutor(corpus).execute(
            planner.plan(self._tree_query(where=where)))
        limited = QueryExecutor(corpus, min_limit_chunk=4).execute(
            planner.plan(self._tree_query(where=where, limit=2)))
        np.testing.assert_array_equal(limited.selected_indices,
                                      unlimited.selected_indices[:2])

    def test_top_level_and_metadata_prefilters_tree_chunks(self, corpus,
                                                           planner):
        from repro.query.ast import AndExpr, NotExpr, PredicateExpr

        # location = detroit AND NOT contains: non-conjunctive (the NOT),
        # but the top-level metadata child must still prefilter, so the
        # cascade only ever touches Detroit rows.
        where = AndExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            NotExpr(PredicateExpr(ContainsObject("komondor")))))
        result = QueryExecutor(corpus).execute(
            planner.plan(self._tree_query(where=where)))
        n_detroit = int((corpus.metadata["location"] == "detroit").sum())
        assert result.images_classified["komondor"] == n_detroit

    def test_short_circuited_rows_report_unknown_labels(self, corpus,
                                                        planner):
        from repro.query.ast import OrExpr, PredicateExpr

        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            PredicateExpr(ContainsObject("komondor"))))
        result = QueryExecutor(corpus).execute(
            planner.plan(self._tree_query(where=where)))
        labels = result.relation["contains_komondor"]
        # Selected rows are either truly classified (0/1) or explicitly
        # unknown (-1) — never a silent placeholder 0.
        assert set(np.unique(labels)) <= {-1, 0, 1}
        selected_positions = result.selected_indices
        unknown = selected_positions[labels == -1]
        # Every unknown row was decided by the cheap disjunct.
        assert all(corpus.metadata["location"][unknown] == "detroit")

    def test_consumed_content_column_forces_classification(self, corpus,
                                                           planner):
        from repro.db.aggregates import compute_partials  # noqa: F401
        from repro.query.ast import Aggregate, OrExpr, PredicateExpr

        # SUM over the contains column must classify every selected row,
        # even the ones the cheap OR disjunct decided.
        where = OrExpr((
            PredicateExpr(MetadataPredicate("location", "==", "detroit")),
            PredicateExpr(ContainsObject("komondor"))))
        query = self._tree_query(
            where=where, select=(Aggregate("sum", "contains_komondor"),))
        result = QueryExecutor(corpus).execute(planner.plan(query))
        # Reference: the true summed labels over the selected rows, from a
        # full classification on a fresh executor.
        full = QueryExecutor(corpus).execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED)))
        reference_labels = np.zeros(len(corpus), dtype=np.int64)
        reference_labels[full.selected_indices] = 1
        expected = int(reference_labels[result.selected_indices].sum())
        total, count = result.partials.groups[()][0]
        assert total == expected
        assert count == len(result)
        # And no -1 leaked into the aggregated column.
        assert set(np.unique(result.relation["contains_komondor"])) <= {0, 1}

    def test_limit_zero_with_order_by_classifies_nothing(self, corpus,
                                                         planner):
        from repro.query.ast import OrderItem

        result = QueryExecutor(corpus).execute(planner.plan(Query(
            content_predicates=(ContainsObject("komondor"),),
            constraints=CONSTRAINED, limit=0,
            order_by=(OrderItem("timestamp"),))))
        assert len(result) == 0
        assert result.images_classified["komondor"] == 0

    def test_type_mismatch_raises_query_error(self, corpus, planner):
        from repro.query.ast import QueryError

        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(metadata_predicates=(
            MetadataPredicate("location", "==", 5),)))
        with pytest.raises(QueryError, match="location"):
            executor.execute(plan)

    def test_type_mismatch_in_membership_raises(self, corpus, planner):
        from repro.query.ast import QueryError

        executor = QueryExecutor(corpus)
        plan = planner.plan(Query(metadata_predicates=(
            MetadataPredicate("camera_id", "in", ("one", "two")),)))
        with pytest.raises(QueryError, match="camera_id"):
            executor.execute(plan)


class TestConstruction:
    def test_empty_corpus_rejected(self):
        from repro.data.corpus import ImageCorpus

        with pytest.raises(ValueError):
            QueryExecutor(ImageCorpus(images=np.zeros((0, 8, 8, 3)), metadata={}))
