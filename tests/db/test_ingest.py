"""Tests for streaming ingest: corpus growth, incremental executor state,
ingest-time materialization, byte-budgeted eviction and persistence."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import connect
from repro.db.executor import QueryExecutor
from repro.db.planner import QueryPlanner
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query
from repro.storage.store import RepresentationStore
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
SQL = "SELECT * FROM images WHERE contains_object(komondor)"


def make_corpus(n_images: int, seed: int):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.9)


@pytest.fixture()
def corpus():
    """Function-scoped: ingest mutates the corpus in place."""
    return make_corpus(24, seed=77)


@pytest.fixture()
def batch():
    """A second corpus serving as the stream of frames to ingest."""
    return make_corpus(10, seed=78)


@pytest.fixture()
def planner(tiny_optimizer, camera_profiler):
    return QueryPlanner({"komondor": tiny_optimizer}, camera_profiler)


def content_plan(planner, **kwargs):
    return planner.plan(Query(content_predicates=(ContainsObject("komondor"),),
                              constraints=CONSTRAINED, **kwargs))


class TestExecutorIngest:
    def test_ingest_grows_corpus_and_relation(self, corpus, batch, planner):
        executor = QueryExecutor(corpus)
        new_ids = executor.ingest(batch.images, metadata=batch.metadata,
                                  content=batch.content)
        np.testing.assert_array_equal(new_ids, np.arange(24, 34))
        assert len(executor.corpus) == 34
        assert len(executor.relation) == 34
        np.testing.assert_array_equal(executor.relation["image_id"],
                                      np.arange(34))
        assert executor.relation["location"].shape == (34,)

    def test_repeated_query_classifies_only_new_rows(self, corpus, batch,
                                                     planner):
        executor = QueryExecutor(corpus)
        plan = content_plan(planner)
        first = executor.execute(plan)
        assert first.images_classified["komondor"] == 24
        executor.ingest(batch.images, metadata=batch.metadata)
        second = executor.execute(plan)
        assert second.images_classified["komondor"] == 10
        # Old rows kept their labels: the old selection is a prefix of the new.
        old_selected = [i for i in second.selected_indices if i < 24]
        np.testing.assert_array_equal(old_selected, first.selected_indices)

    def test_ingested_rows_queryable_by_metadata(self, corpus, planner):
        executor = QueryExecutor(corpus)
        frames = make_corpus(4, seed=5)
        metadata = dict(frames.metadata)
        metadata["location"] = np.array(["atlantis"] * 4)
        new_ids = executor.ingest(frames.images, metadata=metadata)
        plan = planner.plan(Query(metadata_predicates=(
            MetadataPredicate("location", "==", "atlantis"),)))
        result = executor.execute(plan)
        np.testing.assert_array_equal(result.selected_indices, new_ids)

    def test_lazy_top_up_after_ingest_matches_fresh_executor(self, corpus,
                                                             batch, planner):
        # ARCHIVE-style: ingest leaves stored representations stale; the next
        # broad query tops them up and the results match a from-scratch run.
        executor = QueryExecutor(corpus)
        plan = content_plan(planner)
        executor.execute(plan)
        for spec in executor.store.specs():
            assert executor.store.rows(spec) == 24
        executor.ingest(batch.images, metadata=batch.metadata)
        incremental = executor.execute(plan)
        for spec in executor.store.specs():
            assert executor.store.rows(spec) == 34

        merged = QueryExecutor(executor.corpus)
        fresh = merged.execute(plan)
        np.testing.assert_array_equal(incremental.selected_indices,
                                      fresh.selected_indices)

    def test_materialize_on_ingest_extends_registered_reps(self, corpus,
                                                           batch, planner):
        executor = QueryExecutor(corpus)
        executor.execute(content_plan(planner))  # registers + materializes
        registered = executor.store.registered_specs()
        assert registered
        executor.ingest(batch.images, metadata=batch.metadata,
                        materialize=True)
        for spec in registered:
            assert executor.store.rows(spec) == 34

    def test_observed_positive_rate_tracks_materialized_labels(self, corpus,
                                                               planner):
        executor = QueryExecutor(corpus)
        assert executor.observed_positive_rate("komondor") is None
        result = executor.execute(content_plan(planner))
        rate = executor.observed_positive_rate("komondor")
        assert rate == pytest.approx(len(result) / 24)
        assert executor.observed_positive_rate("komondor", "no-such") is None

    def test_ingest_rejects_mismatched_metadata(self, corpus):
        executor = QueryExecutor(corpus)
        with pytest.raises(ValueError):
            executor.ingest(corpus.images[:2], metadata={"location": ["a", "b"]})

    def test_ingest_pads_missing_content_with_false(self, corpus):
        executor = QueryExecutor(corpus)
        frames = make_corpus(3, seed=6)
        executor.ingest(frames.images, metadata=frames.metadata)
        assert not executor.corpus.content["komondor"][-3:].any()

    def test_zero_row_ingest_is_a_cheap_noop(self, corpus):
        # Regression: an empty batch used to rebuild the base relation and
        # walk the store registration path.
        executor = QueryExecutor(corpus)
        relation_before = executor.relation
        gray = executor.store  # namespaceless store; registration must stay 0
        empty = np.zeros((0, TINY_SIZE, TINY_SIZE, 3))
        new_ids = executor.ingest(empty, materialize=True)
        assert new_ids.size == 0
        assert new_ids.dtype == np.int64
        assert executor.relation is relation_before  # nothing rebuilt
        assert len(executor.corpus) == 24
        assert gray.registered_specs() == []
        assert len(gray) == 0

    def test_zero_row_ingest_skips_metadata_validation_cost(self, corpus):
        # The no-op does not even require matching metadata columns.
        executor = QueryExecutor(corpus)
        empty = np.zeros((0, TINY_SIZE, TINY_SIZE, 3))
        assert executor.ingest(empty, metadata={}).size == 0


class TestByteBudget:
    def test_budget_holds_and_results_identical(self, corpus, batch, planner):
        # A budget that can hold roughly one of the cascade's representations:
        # eviction must kick in, results must not change.
        budget = len(corpus) * TINY_SIZE * TINY_SIZE * 3
        bounded = QueryExecutor(corpus,
                                store=RepresentationStore(byte_budget=budget))
        unbounded = QueryExecutor(make_corpus(24, seed=77))
        plan = content_plan(planner)

        for executor in (bounded, unbounded):
            executor.execute(plan)
            executor.ingest(batch.images, metadata=batch.metadata)
            executor.execute(plan)
            executor.invalidate()
            executor.execute(plan)
        assert bounded.store.bytes_stored() <= budget

        final_bounded = bounded.execute(plan)
        final_unbounded = unbounded.execute(plan)
        np.testing.assert_array_equal(final_bounded.selected_indices,
                                      final_unbounded.selected_indices)

    def test_eviction_happens_under_pressure(self, corpus, planner):
        tiny_budget = 64  # far below any full-corpus representation
        executor = QueryExecutor(
            corpus, store=RepresentationStore(byte_budget=tiny_budget))
        result = executor.execute(content_plan(planner))
        assert executor.store.bytes_stored() <= tiny_budget
        assert executor.store.evictions > 0
        # Queries still work (representations recomputed on demand).
        assert result.images_classified["komondor"] == len(corpus)


class TestDatabaseIngest:
    @pytest.fixture()
    def db(self, corpus, tiny_optimizer, tiny_device):
        database = connect(corpus, device=tiny_device, scenario="camera",
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        return database

    def test_zero_row_ingest_returns_empty_ids(self, db):
        empty = np.zeros((0, TINY_SIZE, TINY_SIZE, 3))
        assert db.ingest(empty).size == 0
        assert len(db.corpus) == 24

    def test_ingest_then_requery_classifies_only_new_rows(self, db, batch):
        db.execute(SQL)
        new_ids = db.ingest(batch.images, metadata=batch.metadata,
                            content=batch.content)
        assert new_ids.size == 10
        result = db.execute(SQL)
        assert result.images_classified["komondor"] == 10

    def test_ongoing_scenario_materializes_at_ingest(self, db, batch):
        db.use_scenario("ongoing")
        assert db.scenario.materializes_on_ingest
        db.execute(SQL)
        registered = db.executor.store.registered_specs()
        assert registered
        db.ingest(batch.images, metadata=batch.metadata)
        for spec in registered:
            assert db.executor.store.rows(spec) == len(db.corpus)

    def test_camera_scenario_stays_lazy_at_ingest(self, db, batch):
        assert not db.scenario.materializes_on_ingest
        db.execute(SQL)
        stale_rows = {spec.name: db.executor.store.rows(spec)
                      for spec in db.executor.store.specs()}
        db.ingest(batch.images, metadata=batch.metadata)
        for spec in db.executor.store.specs():
            assert db.executor.store.rows(spec) == stale_rows[spec.name]

    def test_explain_selectivity_refreshed_from_labels(self, db):
        before = db.explain(SQL).content_steps[0].selectivity
        result = db.execute(SQL)
        observed = len(result) / len(db.corpus)
        after = db.explain(SQL).content_steps[0].selectivity
        assert after == pytest.approx(observed)
        # The 90%-positive corpus is far from the balanced eval split, so the
        # refresh should actually move the estimate.
        assert after != before

    def test_ingested_state_round_trips_through_save_load(self, db, batch,
                                                          tmp_path):
        db.execute(SQL)
        db.ingest(batch.images, metadata=batch.metadata, content=batch.content)
        before = db.execute(SQL)
        db.save(tmp_path / "db")

        from repro.db import VisualDatabase
        loaded = VisualDatabase.load(tmp_path / "db")
        assert len(loaded.corpus) == 34
        after = loaded.execute(SQL)
        np.testing.assert_array_equal(after.image_ids, before.image_ids)
        # Materialized virtual columns survived: nothing is re-classified.
        assert after.images_classified["komondor"] == 0

    def test_replacement_corpus_does_not_inherit_labels(self, db, tmp_path):
        # Regression: labels saved for corpus A must not be served for a
        # caller-supplied corpus B that merely matches in length.
        db.execute(SQL)
        db.save(tmp_path / "db")
        replacement = make_corpus(len(db.corpus), seed=123)
        from repro.db import VisualDatabase
        loaded = VisualDatabase.load(tmp_path / "db", corpus=replacement)
        result = loaded.execute(SQL)
        assert result.images_classified["komondor"] == len(replacement)

    def test_store_policy_round_trips(self, corpus, batch, tiny_optimizer,
                                      tiny_device, tmp_path):
        budget = 2 * len(corpus) * TINY_SIZE * TINY_SIZE * 3
        database = connect(corpus, device=tiny_device, scenario="ongoing",
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED,
                           store_budget=budget)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        database.execute(SQL)
        registered = {spec.name
                      for spec in database.executor.store.registered_specs()}
        database.save(tmp_path / "db")

        from repro.db import VisualDatabase
        loaded = VisualDatabase.load(tmp_path / "db")
        store = loaded.executor.store
        assert store.byte_budget == budget
        assert {spec.name for spec in store.registered_specs()} == registered
