"""Regression tests for races the static lock checker found and this tree
fixed: unlocked catalog membership, unlocked executor/materialized reads,
unlocked store lookups, and the server start/close flag races.

Each test hammers the previously-unlocked path from several threads while a
writer churns the state it reads; the assertion is simply "no exception and
a consistent answer" — exactly what the unlocked versions could not promise
(dict-changed-during-iteration, torn reads).
"""

import threading

import numpy as np
import pytest

from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db.catalog import Catalog
from repro.db.executor import QueryExecutor
from repro.storage.store import RepresentationStore
from repro.transforms.spec import TransformSpec
from tests.conftest import TINY_SIZE


def make_corpus(n_images=8, seed=11):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.9)


def _run_threads(workers, errors):
    threads = [threading.Thread(target=worker, name=f"regress-{i}")
               for i, worker in enumerate(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []


class TestCatalogMembershipRaces:
    def test_concurrent_attach_detach_and_iteration(self):
        catalog = Catalog()
        corpus = make_corpus()
        catalog.attach("stable", make_corpus(seed=12))
        stop = threading.Event()
        errors = []

        def churn():
            try:
                for round_ in range(40):
                    name = f"cam_{round_ % 4}"
                    if name in catalog:
                        catalog.detach(name)
                    else:
                        catalog.attach(name, corpus)
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)
            finally:
                stop.set()

        def read():
            try:
                while not stop.is_set():
                    # Unlocked, each of these could raise
                    # "dictionary changed size during iteration".
                    names = list(catalog)
                    assert "stable" in names
                    assert len(catalog) >= 1
                    assert catalog.tables()
                    assert catalog.default_table() is None \
                        or isinstance(catalog.default_table(), str)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        _run_threads([churn, read, read, read], errors)
        assert "stable" in catalog

    def test_duplicate_attach_race_leaves_one_winner(self):
        catalog = Catalog()
        corpus = make_corpus()
        outcomes = []
        barrier = threading.Barrier(4)

        def contend():
            barrier.wait()
            try:
                catalog.attach("cam", corpus)
                outcomes.append("attached")
            except ValueError:
                outcomes.append("rejected")

        errors = []
        _run_threads([contend] * 4, errors)
        assert outcomes.count("attached") == 1
        assert outcomes.count("rejected") == 3


class TestExecutorSnapshotRaces:
    def test_materialized_categories_during_ingest(self):
        executor = QueryExecutor(make_corpus(n_images=12))
        batch = make_corpus(n_images=4, seed=13)
        stop = threading.Event()
        errors = []

        def ingest():
            try:
                for _ in range(25):
                    executor.ingest(batch.images, metadata=batch.metadata,
                                    content=batch.content)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def read():
            try:
                while not stop.is_set():
                    # Previously iterated self._materialized unlocked.
                    assert isinstance(executor.materialized_categories(),
                                      list)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        _run_threads([ingest, read, read], errors)


class TestStoreLookupRaces:
    def test_contains_and_evictions_during_churn(self):
        spec = TransformSpec(8, "rgb")
        array = np.zeros((4,) + spec.shape, dtype=np.float32)
        store = RepresentationStore()
        stop = threading.Event()
        errors = []

        def churn():
            try:
                for _ in range(200):
                    store.add(spec, array)
                    store.clear()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def read():
            try:
                while not stop.is_set():
                    assert (spec in store) in (True, False)
                    assert store.evictions >= 0
                    assert isinstance(store.specs(), list)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        _run_threads([churn, read, read], errors)


class TestServerLifecycleRaces:
    @pytest.fixture()
    def server(self, tiny_optimizer, tiny_device):
        from repro.costs.scenario import CAMERA
        from repro.db import connect
        from repro.server.server import VisualDatabaseServer

        database = connect({"cam": make_corpus(n_images=10, seed=14)},
                           device=tiny_device, scenario=CAMERA,
                           calibrate_target_fps=None)
        return VisualDatabaseServer(database, max_workers=2, max_queue=4,
                                    close_database=True)

    def test_concurrent_close_runs_shutdown_once(self, server):
        server.start()
        barrier = threading.Barrier(4)
        errors = []

        def close():
            barrier.wait()
            try:
                server.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        _run_threads([close] * 4, errors)

    def test_start_after_close_raises(self, server):
        server.start()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.start()
