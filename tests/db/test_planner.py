"""Tests for the query planner: selection, selectivity, predicate ordering."""

from types import SimpleNamespace

import pytest

from repro.core.evaluator import CascadeEvaluation
from repro.core.selector import UserConstraints
from repro.costs.profiler import CostBreakdown
from repro.db.planner import (DEFAULT_SELECTIVITY, QueryPlanner,
                              estimate_selectivity)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query

_STUB_PROFILER = SimpleNamespace(scenario=SimpleNamespace(name="stub"))


class _StubOptimizer:
    """Stands in for a TahomaOptimizer: fixed cost and selectivity."""

    def __init__(self, cost_s: float, selectivity: float) -> None:
        self._cost_s = cost_s
        self._selectivity = selectivity
        self.cache = None

    def select(self, profiler, constraints):
        return SimpleNamespace(
            cost=CostBreakdown(infer_s=self._cost_s),
            name=f"stub-cascade-{self._cost_s}",
            accuracy=0.9,
            throughput=1.0 / self._cost_s,
            cascade=SimpleNamespace(name=f"stub-cascade-{self._cost_s}"),
            stub_selectivity=self._selectivity)


@pytest.fixture(autouse=True)
def _stub_selectivity(monkeypatch):
    monkeypatch.setattr("repro.db.planner.estimate_selectivity",
                        lambda evaluation: evaluation.stub_selectivity)


class TestOrdering:
    def test_content_predicates_ordered_by_selectivity_times_cost(self):
        planner = QueryPlanner(
            {"cheap_selective": _StubOptimizer(cost_s=0.001, selectivity=0.1),
             "expensive": _StubOptimizer(cost_s=0.1, selectivity=0.5),
             "middling": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER)
        query = Query(content_predicates=(ContainsObject("expensive"),
                                          ContainsObject("cheap_selective"),
                                          ContainsObject("middling")))
        plan = planner.plan(query)
        assert plan.categories == ("cheap_selective", "middling", "expensive")
        ranks = [step.rank for step in plan.content_steps]
        assert ranks == sorted(ranks)

    def test_selective_beats_cheap_when_product_is_lower(self):
        # 0.01 * 0.9 = 0.009 vs 0.02 * 0.1 = 0.002: the slower-but-much-more
        # selective predicate must run first.
        planner = QueryPlanner(
            {"cheap_broad": _StubOptimizer(cost_s=0.01, selectivity=0.9),
             "pricier_narrow": _StubOptimizer(cost_s=0.02, selectivity=0.1)},
            _STUB_PROFILER)
        plan = planner.plan(Query(content_predicates=(
            ContainsObject("cheap_broad"), ContainsObject("pricier_narrow"))))
        assert plan.categories == ("pricier_narrow", "cheap_broad")

    def test_metadata_steps_preserved_and_first_in_describe(self):
        planner = QueryPlanner({"a": _StubOptimizer(0.01, 0.5)}, _STUB_PROFILER)
        query = Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            content_predicates=(ContainsObject("a"),),
            limit=7)
        plan = planner.plan(query)
        text = plan.describe()
        assert text.index("filter") < text.index("cascade")
        assert "limit    7" in text
        assert plan.limit == 7
        assert "scenario=stub" in text

    def test_unknown_category_raises(self):
        planner = QueryPlanner({}, _STUB_PROFILER)
        with pytest.raises(KeyError):
            planner.plan(Query(content_predicates=(ContainsObject("zebra"),)))


class TestExpectedCost:
    def test_cost_weighted_by_upstream_selectivity(self):
        planner = QueryPlanner(
            {"first": _StubOptimizer(cost_s=0.001, selectivity=0.25),
             "second": _StubOptimizer(cost_s=0.1, selectivity=0.5)},
            _STUB_PROFILER)
        plan = planner.plan(Query(content_predicates=(
            ContainsObject("first"), ContainsObject("second"))))
        # first runs on everything; second only on the 25% that survive.
        assert plan.expected_cost_per_candidate_s() == pytest.approx(
            0.001 + 0.25 * 0.1)


class TestEstimateSelectivity:
    def test_reads_positive_rate_of_selected_cascade(self, tiny_optimizer,
                                                     camera_profiler):
        evaluation = tiny_optimizer.select(camera_profiler,
                                           UserConstraints(max_accuracy_loss=0.1))
        selectivity = estimate_selectivity(evaluation)
        assert selectivity == evaluation.positive_rate
        # The eval split is balanced and the cascade honours a tight accuracy
        # budget, so its positive rate should be in a broad middle band.
        assert 0.2 <= selectivity <= 0.8

    def test_evaluation_without_positive_rate_falls_back(self, tiny_optimizer,
                                                         camera_profiler):
        # Externally built evaluations (register_optimizer) may carry no
        # positive rate; planning must warn and assume the default, not crash.
        selected = tiny_optimizer.select(camera_profiler)
        bare = CascadeEvaluation(cascade=selected.cascade,
                                 accuracy=selected.accuracy,
                                 cost=selected.cost,
                                 level_fractions=selected.level_fractions)
        with pytest.warns(UserWarning, match="positive_rate"):
            assert estimate_selectivity(bare) == DEFAULT_SELECTIVITY


class TestSelectivityHook:
    def test_hook_overrides_estimate(self):
        observed = {"a": 0.125}
        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER,
            selectivity_hook=lambda category, cascade: observed.get(category))
        plan = planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert plan.content_steps[0].selectivity == 0.125

    def test_hook_none_falls_back_to_estimate(self):
        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER,
            selectivity_hook=lambda category, cascade: None)
        plan = planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert plan.content_steps[0].selectivity == 0.5

    def test_hook_receives_selected_cascade_name(self):
        seen = []

        def hook(category, cascade):
            seen.append((category, cascade))
            return None

        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER, selectivity_hook=hook)
        planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert seen == [("a", "stub-cascade-0.01")]
