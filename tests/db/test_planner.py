"""Tests for the query planner: selection, selectivity, predicate ordering."""

from types import SimpleNamespace

import pytest

from repro.core.evaluator import CascadeEvaluation
from repro.core.selector import UserConstraints
from repro.costs.profiler import CostBreakdown
from repro.db.planner import (DEFAULT_SELECTIVITY, QueryPlanner,
                              estimate_selectivity)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query

_STUB_PROFILER = SimpleNamespace(scenario=SimpleNamespace(name="stub"))


class _StubOptimizer:
    """Stands in for a TahomaOptimizer: fixed cost and selectivity."""

    def __init__(self, cost_s: float, selectivity: float) -> None:
        self._cost_s = cost_s
        self._selectivity = selectivity
        self.cache = None

    def select(self, profiler, constraints):
        return SimpleNamespace(
            cost=CostBreakdown(infer_s=self._cost_s),
            name=f"stub-cascade-{self._cost_s}",
            accuracy=0.9,
            throughput=1.0 / self._cost_s,
            cascade=SimpleNamespace(name=f"stub-cascade-{self._cost_s}"),
            stub_selectivity=self._selectivity)


@pytest.fixture(autouse=True)
def _stub_selectivity(monkeypatch):
    monkeypatch.setattr("repro.db.planner.estimate_selectivity",
                        lambda evaluation: evaluation.stub_selectivity)


class TestOrdering:
    def test_content_predicates_ordered_by_selectivity_times_cost(self):
        planner = QueryPlanner(
            {"cheap_selective": _StubOptimizer(cost_s=0.001, selectivity=0.1),
             "expensive": _StubOptimizer(cost_s=0.1, selectivity=0.5),
             "middling": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER)
        query = Query(content_predicates=(ContainsObject("expensive"),
                                          ContainsObject("cheap_selective"),
                                          ContainsObject("middling")))
        plan = planner.plan(query)
        assert plan.categories == ("cheap_selective", "middling", "expensive")
        ranks = [step.rank for step in plan.content_steps]
        assert ranks == sorted(ranks)

    def test_selective_beats_cheap_when_product_is_lower(self):
        # 0.01 * 0.9 = 0.009 vs 0.02 * 0.1 = 0.002: the slower-but-much-more
        # selective predicate must run first.
        planner = QueryPlanner(
            {"cheap_broad": _StubOptimizer(cost_s=0.01, selectivity=0.9),
             "pricier_narrow": _StubOptimizer(cost_s=0.02, selectivity=0.1)},
            _STUB_PROFILER)
        plan = planner.plan(Query(content_predicates=(
            ContainsObject("cheap_broad"), ContainsObject("pricier_narrow"))))
        assert plan.categories == ("pricier_narrow", "cheap_broad")

    def test_metadata_steps_preserved_and_first_in_describe(self):
        planner = QueryPlanner({"a": _StubOptimizer(0.01, 0.5)}, _STUB_PROFILER)
        query = Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            content_predicates=(ContainsObject("a"),),
            limit=7)
        plan = planner.plan(query)
        text = plan.describe()
        assert text.index("filter") < text.index("cascade")
        assert "limit    7" in text
        assert plan.limit == 7
        assert "scenario=stub" in text

    def test_unknown_category_raises(self):
        planner = QueryPlanner({}, _STUB_PROFILER)
        with pytest.raises(KeyError):
            planner.plan(Query(content_predicates=(ContainsObject("zebra"),)))


class TestExpectedCost:
    def test_cost_weighted_by_upstream_selectivity(self):
        planner = QueryPlanner(
            {"first": _StubOptimizer(cost_s=0.001, selectivity=0.25),
             "second": _StubOptimizer(cost_s=0.1, selectivity=0.5)},
            _STUB_PROFILER)
        plan = planner.plan(Query(content_predicates=(
            ContainsObject("first"), ContainsObject("second"))))
        # first runs on everything; second only on the 25% that survive.
        assert plan.expected_cost_per_candidate_s() == pytest.approx(
            0.001 + 0.25 * 0.1)


class TestEstimateSelectivity:
    def test_reads_positive_rate_of_selected_cascade(self, tiny_optimizer,
                                                     camera_profiler):
        evaluation = tiny_optimizer.select(camera_profiler,
                                           UserConstraints(max_accuracy_loss=0.1))
        selectivity = estimate_selectivity(evaluation)
        assert selectivity == evaluation.positive_rate
        # The eval split is balanced and the cascade honours a tight accuracy
        # budget, so its positive rate should be in a broad middle band.
        assert 0.2 <= selectivity <= 0.8

    def test_evaluation_without_positive_rate_falls_back(self, tiny_optimizer,
                                                         camera_profiler):
        # Externally built evaluations (register_optimizer) may carry no
        # positive rate; planning must warn and assume the default, not crash.
        selected = tiny_optimizer.select(camera_profiler)
        bare = CascadeEvaluation(cascade=selected.cascade,
                                 accuracy=selected.accuracy,
                                 cost=selected.cost,
                                 level_fractions=selected.level_fractions)
        with pytest.warns(UserWarning, match="positive_rate"):
            assert estimate_selectivity(bare) == DEFAULT_SELECTIVITY


class TestTreeLowering:
    def _planner(self):
        return QueryPlanner(
            {"cheap": _StubOptimizer(cost_s=0.001, selectivity=0.5),
             "pricey": _StubOptimizer(cost_s=0.1, selectivity=0.5)},
            _STUB_PROFILER)

    def test_conjunctive_query_has_no_tree(self):
        plan = self._planner().plan(Query(
            metadata_predicates=(MetadataPredicate("a", "==", 1),),
            content_predicates=(ContainsObject("cheap"),)))
        assert plan.predicate_tree is None
        assert plan.allow_early_stop

    def test_or_query_lowers_to_tree_with_metadata_first(self):
        from repro.db.planner import PlanOr, MetadataStep as MS
        from repro.query.ast import OrExpr, PredicateExpr

        where = OrExpr((PredicateExpr(ContainsObject("pricey")),
                        PredicateExpr(MetadataPredicate("a", "==", 1))))
        plan = self._planner().plan(Query(where=where))
        assert isinstance(plan.predicate_tree, PlanOr)
        # The free metadata disjunct is ordered before the cascade.
        assert isinstance(plan.predicate_tree.children[0], MS)

    def test_or_children_ordered_cheap_first(self):
        from repro.db.planner import PlanOr
        from repro.query.ast import OrExpr, PredicateExpr

        where = OrExpr((PredicateExpr(ContainsObject("pricey")),
                        PredicateExpr(ContainsObject("cheap"))))
        plan = self._planner().plan(Query(where=where))
        assert isinstance(plan.predicate_tree, PlanOr)
        assert [child.category for child in plan.predicate_tree.children] == [
            "cheap", "pricey"]

    def test_tree_plan_still_lists_content_steps_for_provenance(self):
        from repro.query.ast import OrExpr, PredicateExpr

        where = OrExpr((PredicateExpr(ContainsObject("pricey")),
                        PredicateExpr(ContainsObject("cheap"))))
        plan = self._planner().plan(Query(where=where))
        assert set(plan.categories) == {"cheap", "pricey"}
        ranks = [step.rank for step in plan.content_steps]
        assert ranks == sorted(ranks)

    def test_cascade_selected_once_per_category(self):
        from repro.query.ast import AndExpr, OrExpr, PredicateExpr

        # The same category twice in one tree: one ContentStep, not two.
        where = OrExpr((
            AndExpr((PredicateExpr(MetadataPredicate("a", "==", 1)),
                     PredicateExpr(ContainsObject("cheap")))),
            AndExpr((PredicateExpr(MetadataPredicate("a", "==", 2)),
                     PredicateExpr(ContainsObject("cheap"))))))
        plan = self._planner().plan(Query(where=where))
        assert plan.categories == ("cheap",)


class TestEarlyStopGating:
    def _plan(self, **kwargs):
        planner = QueryPlanner({"a": _StubOptimizer(0.01, 0.5)},
                               _STUB_PROFILER)
        return planner.plan(Query(
            content_predicates=(ContainsObject("a"),), **kwargs))

    def test_plain_limit_allows_early_stop(self):
        assert self._plan(limit=5).allow_early_stop

    def test_order_by_disables_early_stop(self):
        from repro.query.ast import OrderItem

        plan = self._plan(limit=5, order_by=(OrderItem("timestamp"),))
        assert not plan.allow_early_stop

    def test_aggregates_disable_early_stop(self):
        from repro.query.ast import Aggregate

        plan = self._plan(limit=5, select=(Aggregate("count", None),))
        assert not plan.allow_early_stop
        assert plan.is_aggregate

    def test_group_by_disables_early_stop(self):
        plan = self._plan(select=("location",), group_by=("location",))
        assert not plan.allow_early_stop


class TestSelectivityHook:
    def test_hook_overrides_estimate(self):
        observed = {"a": 0.125}
        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER,
            selectivity_hook=lambda category, cascade: observed.get(category))
        plan = planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert plan.content_steps[0].selectivity == 0.125

    def test_hook_none_falls_back_to_estimate(self):
        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER,
            selectivity_hook=lambda category, cascade: None)
        plan = planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert plan.content_steps[0].selectivity == 0.5

    def test_hook_receives_selected_cascade_name(self):
        seen = []

        def hook(category, cascade):
            seen.append((category, cascade))
            return None

        planner = QueryPlanner(
            {"a": _StubOptimizer(cost_s=0.01, selectivity=0.5)},
            _STUB_PROFILER, selectivity_hook=hook)
        planner.plan(Query(content_predicates=(ContainsObject("a"),)))
        assert seen == [("a", "stub-cascade-0.01")]
