"""Tests for ResultSet: cursor semantics, streaming, columnar access."""

import numpy as np
import pytest

from repro.db.planner import QueryPlan
from repro.db.results import ResultSet
from repro.query.processor import QueryResult
from repro.query.relation import Relation


def _result_set(n_rows: int = 5) -> ResultSet:
    relation = Relation({
        "image_id": np.arange(n_rows),
        "location": np.array([f"city{i}" for i in range(n_rows)]),
        "contains_komondor": np.ones(n_rows, dtype=np.int64),
    })
    result = QueryResult(relation=relation,
                         selected_indices=np.arange(n_rows) * 2,
                         cascades_used={}, images_classified={"komondor": n_rows})
    plan = QueryPlan(metadata_steps=(), content_steps=(), scenario_name="camera")
    return ResultSet(result, plan)


class TestShape:
    def test_len_and_columns(self):
        results = _result_set(4)
        assert len(results) == 4
        assert results.columns == ["contains_komondor", "image_id", "location"]

    def test_image_ids(self):
        np.testing.assert_array_equal(_result_set(3).image_ids, [0, 2, 4])


class TestRowAccess:
    def test_rows_are_plain_python(self):
        row = _result_set().row(1)
        assert row == {"image_id": 1, "location": "city1",
                       "contains_komondor": 1}
        assert isinstance(row["image_id"], int)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            _result_set(2).row(2)

    def test_iteration_yields_all_rows_lazily(self):
        results = _result_set(3)
        iterator = iter(results)
        assert next(iterator)["image_id"] == 0
        # Iteration does not disturb the fetch cursor.
        assert results.fetchone()["image_id"] == 0
        assert [row["image_id"] for row in results] == [0, 1, 2]


class TestFetchCursor:
    def test_fetchmany_advances_and_truncates(self):
        results = _result_set(5)
        first = results.fetchmany(2)
        second = results.fetchmany(2)
        tail = results.fetchmany(2)
        assert [row["image_id"] for row in first] == [0, 1]
        assert [row["image_id"] for row in second] == [2, 3]
        assert [row["image_id"] for row in tail] == [4]
        assert results.fetchmany(2) == []

    def test_fetchone_exhaustion(self):
        results = _result_set(1)
        assert results.fetchone()["image_id"] == 0
        assert results.fetchone() is None

    def test_fetchall_returns_remaining(self):
        results = _result_set(4)
        results.fetchmany(3)
        assert [row["image_id"] for row in results.fetchall()] == [3]
        assert results.fetchall() == []

    def test_rewind(self):
        results = _result_set(2)
        results.fetchall()
        results.rewind()
        assert results.fetchone()["image_id"] == 0

    def test_fetchmany_zero_returns_empty_without_moving_cursor(self):
        results = _result_set(3)
        assert results.fetchmany(0) == []
        # DB-API-ish: size 0 is a no-op, the cursor has not advanced.
        assert results.fetchone()["image_id"] == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _result_set().fetchmany(-1)


class TestColumnarAccess:
    def test_to_relation(self):
        relation = _result_set(3).to_relation()
        assert len(relation) == 3
        assert "contains_komondor" in relation

    def test_provenance_passthrough(self):
        results = _result_set(2)
        assert results.images_classified == {"komondor": 2}
        assert results.cascades_used == {}
        assert results.plan.scenario_name == "camera"
