"""Tests for ResultSet: cursor semantics, streaming, columnar access."""

import numpy as np
import pytest

from repro.db.planner import QueryPlan
from repro.db.results import ResultSet
from repro.query.processor import QueryResult
from repro.query.relation import Relation


def _result_set(n_rows: int = 5) -> ResultSet:
    relation = Relation({
        "image_id": np.arange(n_rows),
        "location": np.array([f"city{i}" for i in range(n_rows)]),
        "contains_komondor": np.ones(n_rows, dtype=np.int64),
    })
    result = QueryResult(relation=relation,
                         selected_indices=np.arange(n_rows) * 2,
                         cascades_used={}, images_classified={"komondor": n_rows})
    plan = QueryPlan(metadata_steps=(), content_steps=(), scenario_name="camera")
    return ResultSet(result, plan)


class TestShape:
    def test_len_and_columns(self):
        results = _result_set(4)
        assert len(results) == 4
        assert results.columns == ["contains_komondor", "image_id", "location"]

    def test_image_ids(self):
        np.testing.assert_array_equal(_result_set(3).image_ids, [0, 2, 4])


class TestRowAccess:
    def test_rows_are_plain_python(self):
        row = _result_set().row(1)
        assert row == {"image_id": 1, "location": "city1",
                       "contains_komondor": 1}
        assert isinstance(row["image_id"], int)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            _result_set(2).row(2)

    def test_iteration_yields_all_rows_lazily(self):
        results = _result_set(3)
        iterator = iter(results)
        assert next(iterator)["image_id"] == 0
        # Iteration does not disturb the fetch cursor.
        assert results.fetchone()["image_id"] == 0
        assert [row["image_id"] for row in results] == [0, 1, 2]


class TestFetchCursor:
    def test_fetchmany_advances_and_truncates(self):
        results = _result_set(5)
        first = results.fetchmany(2)
        second = results.fetchmany(2)
        tail = results.fetchmany(2)
        assert [row["image_id"] for row in first] == [0, 1]
        assert [row["image_id"] for row in second] == [2, 3]
        assert [row["image_id"] for row in tail] == [4]
        assert results.fetchmany(2) == []

    def test_fetchone_exhaustion(self):
        results = _result_set(1)
        assert results.fetchone()["image_id"] == 0
        assert results.fetchone() is None

    def test_fetchall_returns_remaining(self):
        results = _result_set(4)
        results.fetchmany(3)
        assert [row["image_id"] for row in results.fetchall()] == [3]
        assert results.fetchall() == []

    def test_rewind(self):
        results = _result_set(2)
        results.fetchall()
        results.rewind()
        assert results.fetchone()["image_id"] == 0

    def test_fetchmany_zero_returns_empty_without_moving_cursor(self):
        results = _result_set(3)
        assert results.fetchmany(0) == []
        # DB-API-ish: size 0 is a no-op, the cursor has not advanced.
        assert results.fetchone()["image_id"] == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _result_set().fetchmany(-1)


class TestColumnarAccess:
    def test_to_relation(self):
        relation = _result_set(3).to_relation()
        assert len(relation) == 3
        assert "contains_komondor" in relation

    def test_provenance_passthrough(self):
        results = _result_set(2)
        assert results.images_classified == {"komondor": 2}
        assert results.cascades_used == {}
        assert results.plan.scenario_name == "camera"


def _shard_result(ids, columns) -> QueryResult:
    """A synthetic per-shard QueryResult for merge tests."""
    return QueryResult(relation=Relation(columns),
                       selected_indices=np.asarray(ids),
                       cascades_used={},
                       images_classified={"komondor": len(ids)})


class TestMergeMixedSchemas:
    def test_union_merge_with_typed_fills(self):
        from repro.db.results import _merge_relations

        north = _shard_result([0, 1], {
            "image_id": np.array([0, 1]),
            "weather": np.array(["sunny", "rain"]),
            "speed": np.array([1.5, 2.5]),
        })
        south = _shard_result([4], {
            "image_id": np.array([4]),
            "lane": np.array([3]),
        })
        merged = _merge_relations({"north": north, "south": south})
        assert len(merged) == 3
        np.testing.assert_array_equal(merged["image_id"], [0, 1, 4])
        np.testing.assert_array_equal(merged["__table__"],
                                      ["north", "north", "south"])
        # Missing columns get typed fills, never misaligned values.
        np.testing.assert_array_equal(merged["weather"],
                                      ["sunny", "rain", ""])
        np.testing.assert_array_equal(merged["lane"], [-1, -1, 3])
        np.testing.assert_array_equal(merged["speed"][:2], [1.5, 2.5])
        assert np.isnan(merged["speed"][2])

    def test_unsigned_fill_does_not_overflow(self):
        from repro.db.results import _merge_relations

        a = _shard_result([0], {"image_id": np.array([0]),
                                "lane": np.array([3], dtype=np.uint8)})
        b = _shard_result([1], {"image_id": np.array([1])})
        merged = _merge_relations({"a": a, "b": b})
        # -1 would overflow an unsigned dtype; the sentinel is the max value.
        np.testing.assert_array_equal(merged["lane"], [3, 255])
        assert merged["lane"].dtype == np.uint8

    def test_bool_fill_is_false(self):
        from repro.db.results import _merge_relations

        a = _shard_result([0], {"image_id": np.array([0]),
                                "flagged": np.array([True])})
        b = _shard_result([1], {"image_id": np.array([1])})
        merged = _merge_relations({"a": a, "b": b})
        np.testing.assert_array_equal(merged["flagged"], [True, False])
        assert merged["flagged"].dtype == np.bool_

    def test_identical_schemas_unchanged(self):
        from repro.db.results import _merge_relations

        a = _shard_result([0], {"image_id": np.array([0]),
                                "location": np.array(["x"])})
        b = _shard_result([1], {"image_id": np.array([1]),
                                "location": np.array(["y"])})
        merged = _merge_relations({"a": a, "b": b})
        np.testing.assert_array_equal(merged["location"], ["x", "y"])


class TestShapedRows:
    """ORDER BY / projection / post-sort LIMIT applied by build_result_set."""

    def _result(self):
        relation = Relation({
            "image_id": np.arange(4),
            "speed": np.array([2.0, 9.0, 4.0, 9.0]),
            "location": np.array(["b", "a", "a", "c"]),
        })
        return QueryResult(relation=relation,
                           selected_indices=np.arange(4),
                           cascades_used={}, images_classified={})

    def test_order_by_desc_then_limit(self):
        from repro.db.results import build_result_set
        from repro.query.ast import OrderItem

        plan = QueryPlan(metadata_steps=(), content_steps=(), limit=2,
                         order_by=(OrderItem("speed", ascending=False),))
        results = build_result_set(self._result(), plan)
        assert [row["speed"] for row in results] == [9.0, 9.0]
        # image_ids follow the sort permutation.
        np.testing.assert_array_equal(results.image_ids, [1, 3])

    def test_multi_key_sort(self):
        from repro.db.results import build_result_set
        from repro.query.ast import OrderItem

        plan = QueryPlan(metadata_steps=(), content_steps=(),
                         order_by=(OrderItem("location"),
                                   OrderItem("speed", ascending=False)))
        results = build_result_set(self._result(), plan)
        assert [(row["location"], row["speed"]) for row in results] == [
            ("a", 9.0), ("a", 4.0), ("b", 2.0), ("c", 9.0)]

    def test_projection(self):
        from repro.db.results import build_result_set

        plan = QueryPlan(metadata_steps=(), content_steps=(),
                         select=("speed", "image_id"))
        results = build_result_set(self._result(), plan)
        assert results.columns == ["image_id", "speed"]

    def test_unknown_projection_column(self):
        from repro.db.results import build_result_set
        from repro.query.ast import QueryError

        plan = QueryPlan(metadata_steps=(), content_steps=(),
                         select=("nope",))
        with pytest.raises(QueryError, match="nope"):
            build_result_set(self._result(), plan)

    def test_unknown_order_column(self):
        from repro.db.results import build_result_set
        from repro.query.ast import OrderItem, QueryError

        plan = QueryPlan(metadata_steps=(), content_steps=(),
                         order_by=(OrderItem("nope"),))
        with pytest.raises(QueryError, match="ORDER BY"):
            build_result_set(self._result(), plan)


class TestAggregateResultSet:
    def _result(self):
        relation = Relation({
            "location": np.array(["a", "b", "a"]),
            "speed": np.array([1.0, 2.0, 3.0]),
        })
        return QueryResult(relation=relation,
                           selected_indices=np.arange(3),
                           cascades_used={}, images_classified={})

    def _build(self, select, group_by=(), order_by=(), limit=None):
        from repro.db.aggregates import compute_partials
        from repro.db.results import build_result_set

        plan = QueryPlan(metadata_steps=(), content_steps=(), limit=limit,
                         select=select, group_by=group_by, order_by=order_by)
        result = self._result()
        result.partials = compute_partials(result.relation, plan.aggregates,
                                           group_by)
        return build_result_set(result, plan)

    def test_global_count_row(self):
        from repro.query.ast import Aggregate

        results = self._build((Aggregate("count", None),))
        assert len(results) == 1
        assert results.row(0) == {"count(*)": 3}

    def test_grouped_rows_and_projection(self):
        from repro.query.ast import Aggregate

        results = self._build(("location", Aggregate("avg", "speed")),
                              group_by=("location",))
        assert results.columns == ["avg(speed)", "location"]
        rows = {row["location"]: row["avg(speed)"] for row in results}
        assert rows == {"a": 2.0, "b": 2.0}

    def test_order_by_aggregate_desc_with_limit(self):
        from repro.query.ast import Aggregate, OrderItem

        results = self._build(("location", Aggregate("count", None)),
                              group_by=("location",),
                              order_by=(OrderItem(Aggregate("count", None),
                                                  ascending=False),),
                              limit=1)
        assert len(results) == 1
        assert results.row(0) == {"location": "a", "count(*)": 2}

    def test_image_ids_not_defined(self):
        from repro.query.ast import Aggregate, QueryError

        results = self._build((Aggregate("count", None),))
        with pytest.raises(QueryError):
            results.image_ids

    def test_from_fanout_merges_partials(self):
        from repro.db.aggregates import compute_partials
        from repro.db.results import AggregateResultSet
        from repro.query.ast import Aggregate

        select = ("location", Aggregate("count", None),
                  Aggregate("avg", "speed"))
        plan = QueryPlan(metadata_steps=(), content_steps=(),
                         select=select, group_by=("location",))
        shards = {}
        for name, locations, speeds in [
                ("cam_a", ["x", "y"], [1.0, 5.0]),
                ("cam_b", ["x", "x"], [3.0, 5.0])]:
            relation = Relation({"location": np.array(locations),
                                 "speed": np.array(speeds)})
            result = QueryResult(relation=relation,
                                 selected_indices=np.arange(len(locations)),
                                 cascades_used={},
                                 images_classified={"k": len(locations)})
            result.partials = compute_partials(relation, plan.aggregates,
                                               plan.group_by)
            shards[name] = result
        merged = AggregateResultSet.from_fanout(
            shards, {name: plan for name in shards})
        rows = {row["location"]: row for row in merged}
        assert rows["x"]["count(*)"] == 3
        assert rows["x"]["avg(speed)"] == pytest.approx(3.0)
        assert rows["y"]["count(*)"] == 1
        # Per-shard statistics survive the merge.
        assert merged.images_classified == {"cam_a": {"k": 2},
                                            "cam_b": {"k": 2}}


class TestFanoutOrderBy:
    def test_merged_rows_sorted_before_limit(self):
        from repro.db.results import FanoutResultSet
        from repro.query.ast import OrderItem

        results = {
            "cam_a": _shard_result([0, 1], {"image_id": np.array([0, 1]),
                                            "speed": np.array([1.0, 9.0])}),
            "cam_b": _shard_result([5], {"image_id": np.array([5]),
                                         "speed": np.array([4.0])}),
        }
        plans = {table: QueryPlan(
            metadata_steps=(), content_steps=(), limit=2, table=table,
            order_by=(OrderItem("speed", ascending=False),))
            for table in results}
        merged = FanoutResultSet(results, plans)
        assert [row["speed"] for row in merged] == [9.0, 4.0]
        # The top rows come from different shards: a per-shard pre-cap
        # would have returned cam_a's 1.0 instead of cam_b's 4.0.
        assert [row["__table__"] for row in merged] == ["cam_a", "cam_b"]


class TestFanoutLimit:
    def _fanout(self, limit):
        from repro.db.results import FanoutResultSet

        results = {
            "cam_a": _shard_result([0, 1, 2], {"image_id": np.array([0, 1, 2])}),
            "cam_b": _shard_result([5, 6], {"image_id": np.array([5, 6])}),
        }
        plans = {table: QueryPlan(metadata_steps=(), content_steps=(),
                                  limit=limit, table=table)
                 for table in results}
        return FanoutResultSet(results, plans)

    def test_merged_rows_capped_at_limit(self):
        merged = self._fanout(limit=4)
        assert len(merged) == 4
        np.testing.assert_array_equal(merged.image_ids, [0, 1, 2, 5])
        np.testing.assert_array_equal(merged.to_relation()["__table__"],
                                      ["cam_a", "cam_a", "cam_a", "cam_b"])
        # per_table views reflect the capped rows; stats report real work.
        assert len(merged.per_table("cam_b")) == 1
        assert merged.images_classified["cam_b"]["komondor"] == 2

    def test_no_limit_keeps_everything(self):
        merged = self._fanout(limit=None)
        assert len(merged) == 5

    def test_limit_zero_returns_no_rows(self):
        merged = self._fanout(limit=0)
        assert len(merged) == 0
        assert merged.tables == ("cam_a", "cam_b")
