"""Tests for retention windows: bounded streaming state with stable ids.

Covers the RetentionPolicy model, coherent drop_oldest across corpus /
executor / store, enforcement at ingest and via db.retain(), the soak
acceptance criterion (ingest >> window, results match an unbounded reference
restricted to the surviving rows), persistence of policy + id offset, and
fan-out queries racing an ingest + retention pass.
"""

import threading

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import ImageCorpus, generate_corpus
from repro.db import RetentionPolicy, VisualDatabase, connect
from repro.db.executor import QueryExecutor
from repro.db.planner import QueryPlanner
from repro.query.predicates import ContainsObject
from repro.query.processor import Query
from repro.storage.store import RepresentationStore
from repro.transforms.spec import TransformSpec
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
SQL = "SELECT * FROM images WHERE contains_object(komondor)"


def make_corpus(n_images: int, seed: int, positive_rate: float = 0.9):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed),
                           positive_rate=positive_rate)


def timed_corpus(timestamps):
    """A corpus whose 'timestamp' column is exactly ``timestamps``."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    n = timestamps.size
    return ImageCorpus(
        images=np.zeros((n, TINY_SIZE, TINY_SIZE, 3)),
        metadata={"timestamp": timestamps,
                  "location": np.array(["detroit"] * n)})


@pytest.fixture()
def planner(tiny_optimizer, camera_profiler):
    return QueryPlanner({"komondor": tiny_optimizer}, camera_profiler)


def content_plan(planner, **kwargs):
    return planner.plan(Query(content_predicates=(ContainsObject("komondor"),),
                              constraints=CONSTRAINED, **kwargs))


class TestRetentionPolicy:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError, match="max_rows, max_age"):
            RetentionPolicy()

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError, match="max_rows"):
            RetentionPolicy(max_rows=0)
        with pytest.raises(ValueError, match="max_age"):
            RetentionPolicy(max_age=0.0)
        with pytest.raises(ValueError, match="max_age"):
            RetentionPolicy(max_age=-5.0)

    def test_max_rows_drop_count(self):
        corpus = timed_corpus(np.arange(10.0))
        assert RetentionPolicy(max_rows=4).rows_to_drop(corpus) == 6
        assert RetentionPolicy(max_rows=10).rows_to_drop(corpus) == 0
        assert RetentionPolicy(max_rows=50).rows_to_drop(corpus) == 0

    def test_max_age_is_anchored_to_newest_timestamp(self):
        corpus = timed_corpus([0.0, 10.0, 95.0, 99.0, 100.0])
        # Cutoff is 100 - 30 = 70: the two stale rows at the front go.
        assert RetentionPolicy(max_age=30.0).rows_to_drop(corpus) == 2
        # Even a tiny window keeps the newest row: a stalled feed never
        # empties the table.
        assert RetentionPolicy(max_age=0.5).rows_to_drop(corpus) == 4

    def test_both_bounds_take_the_stricter(self):
        corpus = timed_corpus([0.0, 1.0, 2.0, 98.0, 99.0, 100.0])
        policy = RetentionPolicy(max_rows=5, max_age=10.0,
                                 timestamp_column="timestamp")
        assert policy.rows_to_drop(corpus) == 3  # age drops more than rows

    def test_missing_timestamp_column_is_reported(self):
        corpus = timed_corpus([0.0, 1.0])
        policy = RetentionPolicy(max_age=1.0, timestamp_column="recorded_at")
        with pytest.raises(KeyError, match="recorded_at"):
            policy.rows_to_drop(corpus)

    def test_dict_round_trip(self):
        policy = RetentionPolicy(max_rows=7, max_age=3.5,
                                 timestamp_column="ts")
        assert RetentionPolicy.from_dict(policy.to_dict()) == policy


class TestCorpusDropOldest:
    def test_drops_front_rows_everywhere(self):
        corpus = make_corpus(10, seed=1)
        kept_images = corpus.images[3:].copy()
        kept_location = corpus.metadata["location"][3:].copy()
        kept_content = corpus.content["komondor"][3:].copy()
        assert corpus.drop_oldest(3) == 3
        assert len(corpus) == 7
        np.testing.assert_array_equal(corpus.images, kept_images)
        np.testing.assert_array_equal(corpus.metadata["location"],
                                      kept_location)
        np.testing.assert_array_equal(corpus.content["komondor"], kept_content)

    def test_survivors_are_copies_not_views(self):
        # A view would pin the dropped rows' memory, defeating retention.
        corpus = make_corpus(6, seed=2)
        corpus.drop_oldest(2)
        assert corpus.images.base is None
        for values in corpus.metadata.values():
            assert values.base is None

    def test_clamps_and_validates(self):
        corpus = make_corpus(4, seed=3)
        assert corpus.drop_oldest(0) == 0
        assert corpus.drop_oldest(100) == 4
        assert len(corpus) == 0
        with pytest.raises(ValueError):
            corpus.drop_oldest(-1)


class TestStoreTrim:
    def test_trims_arrays_and_credits_budget(self):
        gray = TransformSpec(8, "gray")
        store = RepresentationStore().scoped("cam")
        store.add(gray, gray.apply_batch(np.zeros((10, TINY_SIZE,
                                                   TINY_SIZE, 3))))
        before = store.bytes_stored()
        store.drop_oldest_rows(4)
        assert store.rows(gray) == 6
        assert store.bytes_stored() == before * 6 // 10

    def test_short_arrays_become_empty_not_negative(self):
        gray = TransformSpec(8, "gray")
        store = RepresentationStore().scoped("cam")
        store.add(gray, gray.apply_batch(np.zeros((3, TINY_SIZE,
                                                   TINY_SIZE, 3))))
        store.drop_oldest_rows(5)
        assert store.rows(gray) == 0
        assert gray in store  # spec and registration survive, array is empty

    def test_other_namespaces_untouched(self):
        gray = TransformSpec(8, "gray")
        root = RepresentationStore()
        a, b = root.scoped("a"), root.scoped("b")
        images = np.zeros((5, TINY_SIZE, TINY_SIZE, 3))
        a.add(gray, gray.apply_batch(images))
        b.add(gray, gray.apply_batch(images))
        a.drop_oldest_rows(2)
        assert a.rows(gray) == 3
        assert b.rows(gray) == 5


class TestExecutorRetention:
    def test_drop_oldest_keeps_ids_stable(self, planner):
        executor = QueryExecutor(make_corpus(20, seed=10))
        first = executor.execute(content_plan(planner))
        assert executor.drop_oldest(8) == 8
        assert executor.id_offset == 8
        np.testing.assert_array_equal(executor.relation["image_id"],
                                      np.arange(8, 20))
        second = executor.execute(content_plan(planner))
        # Surviving rows kept their ids and labels: nothing re-classified,
        # and the old selection restricted to survivors is exactly the new.
        assert second.images_classified["komondor"] == 0
        np.testing.assert_array_equal(
            second.selected_indices,
            first.selected_indices[first.selected_indices >= 8])

    def test_drop_oldest_trims_store_namespace(self, planner):
        executor = QueryExecutor(make_corpus(16, seed=11))
        executor.execute(content_plan(planner))
        rows_before = {spec.name: executor.store.rows(spec)
                       for spec in executor.store.specs()}
        assert rows_before
        bytes_before = executor.store.bytes_stored()
        executor.drop_oldest(6)
        for spec in executor.store.specs():
            assert executor.store.rows(spec) == rows_before[spec.name] - 6
        assert executor.store.bytes_stored() < bytes_before

    def test_retention_enforced_at_ingest(self, planner):
        executor = QueryExecutor(make_corpus(10, seed=12),
                                 retention=RetentionPolicy(max_rows=12))
        batch = make_corpus(8, seed=13)
        new_ids = executor.ingest(batch.images, metadata=batch.metadata)
        np.testing.assert_array_equal(new_ids, np.arange(10, 18))
        assert len(executor.corpus) == 12
        assert executor.id_offset == 6
        # The ingested rows that survived are the window's tail.
        np.testing.assert_array_equal(executor.relation["image_id"],
                                      np.arange(6, 18))

    def test_ids_never_reused_across_retention(self):
        executor = QueryExecutor(make_corpus(6, seed=14),
                                 retention=RetentionPolicy(max_rows=6))
        seen: list[int] = []
        for seed in range(20, 26):
            batch = make_corpus(3, seed=seed)
            seen.extend(executor.ingest(batch.images,
                                        metadata=batch.metadata).tolist())
        assert seen == sorted(set(seen))  # strictly increasing, no reuse
        assert len(executor.corpus) == 6

    def test_retain_without_policy_is_noop(self):
        executor = QueryExecutor(make_corpus(5, seed=15))
        assert executor.retain() == 0
        assert len(executor.corpus) == 5


class TestDatabaseRetention:
    @pytest.fixture()
    def db(self, tiny_optimizer, tiny_device):
        database = connect(make_corpus(12, seed=30),
                           device=tiny_device, scenario="camera",
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED,
                           retention=RetentionPolicy(max_rows=12))
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        return database

    def test_connect_applies_policy_to_single_table(self, db):
        assert db.retention_for("images") == RetentionPolicy(max_rows=12)
        batch = make_corpus(5, seed=31)
        db.ingest(batch.images, metadata=batch.metadata)
        assert len(db.corpus) == 12

    def test_connect_mapping_assigns_per_table_policies(self, tiny_device):
        policies = {"cam_a": RetentionPolicy(max_rows=8)}
        database = connect({"cam_a": make_corpus(6, seed=32),
                            "cam_b": make_corpus(6, seed=33)},
                           device=tiny_device, calibrate_target_fps=None,
                           retention=policies)
        assert database.retention_for("cam_a") == policies["cam_a"]
        assert database.retention_for("cam_b") is None

    def test_connect_rejects_unknown_retention_tables(self, tiny_device):
        with pytest.raises(ValueError, match="cam_typo"):
            connect({"cam_a": make_corpus(4, seed=34)},
                    device=tiny_device, calibrate_target_fps=None,
                    retention={"cam_typo": RetentionPolicy(max_rows=4)})

    def test_set_retention_and_retain_on_demand(self, tiny_optimizer,
                                                tiny_device):
        database = connect(make_corpus(20, seed=35), device=tiny_device,
                           calibrate_target_fps=None,
                           default_constraints=CONSTRAINED)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        assert database.retention_for("images") is None
        assert database.retain() == {"images": 0}

        database.set_retention("images", RetentionPolicy(max_rows=15))
        assert database.retain() == {"images": 5}
        assert len(database.corpus) == 15
        np.testing.assert_array_equal(database.executor.relation["image_id"],
                                      np.arange(5, 20))
        database.set_retention("images", None)
        assert database.retention_for("images") is None

    def test_max_age_window(self, tiny_device):
        corpus = timed_corpus(np.arange(10.0))
        database = connect(corpus, device=tiny_device,
                           calibrate_target_fps=None,
                           retention=RetentionPolicy(max_age=3.0))
        dropped = database.retain()
        assert dropped == {"images": 6}  # cutoff 9 - 3 = 6: rows 0..5 go
        np.testing.assert_array_equal(
            database.corpus.metadata["timestamp"], [6.0, 7.0, 8.0, 9.0])

    def test_attach_with_policy(self, db):
        db.attach("cam_b", make_corpus(4, seed=36),
                  retention=RetentionPolicy(max_rows=3))
        assert db.retain("cam_b") == {"cam_b": 1}
        assert len(db.corpus_for("cam_b")) == 3

    def test_soak_bounded_state_matches_unbounded_reference(
            self, tiny_optimizer, tiny_device):
        """Acceptance: ingest 10x the window; every table holds <= N rows,
        the store stays within budget, and query results over the retained
        window exactly match an unbounded reference restricted to the same
        rows."""
        window = 12
        batches = [make_corpus(6, seed=100 + i) for i in range(20)]
        budget = 4 * window * TINY_SIZE * TINY_SIZE * 3

        bounded = connect(make_corpus(window, seed=99), device=tiny_device,
                          scenario="ongoing", calibrate_target_fps=None,
                          default_constraints=CONSTRAINED,
                          store_budget=budget,
                          retention=RetentionPolicy(max_rows=window))
        reference = connect(make_corpus(window, seed=99), device=tiny_device,
                            scenario="ongoing", calibrate_target_fps=None,
                            default_constraints=CONSTRAINED)
        for database in (bounded, reference):
            database.register_optimizer("komondor", tiny_optimizer,
                                        reference_params=REFERENCE_PARAMS)
            database.execute(SQL)  # registers ONGOING representations

        for batch in batches:
            for database in (bounded, reference):
                database.ingest(batch.images, metadata=batch.metadata,
                                content=batch.content)
            assert len(bounded.corpus) <= window
            assert bounded.catalog.store.total_bytes_stored() <= budget

        total = window + sum(len(batch) for batch in batches)
        assert len(bounded.corpus) == window
        assert len(reference.corpus) == total
        offset = bounded.executor.id_offset
        assert offset == total - window

        bounded_result = bounded.execute(SQL)
        reference_result = reference.execute(SQL)
        # The bounded database classifies exactly its window, never more.
        assert bounded_result.images_classified["komondor"] == window
        # Restrict the unbounded reference to the retained ids: identical.
        surviving = reference_result.image_ids >= offset
        np.testing.assert_array_equal(bounded_result.image_ids,
                                      reference_result.image_ids[surviving])
        np.testing.assert_array_equal(
            bounded_result.to_relation()["contains_komondor"],
            reference_result.to_relation()["contains_komondor"][surviving])
        np.testing.assert_array_equal(
            bounded_result.to_relation()["image_id"],
            reference_result.to_relation()["image_id"][surviving])
        # Surviving rows are never re-classified by a repeated query.
        assert bounded.execute(SQL).images_classified["komondor"] == 0


class TestRetentionPersistence:
    @pytest.fixture()
    def db(self, tiny_optimizer, tiny_device):
        database = connect(make_corpus(10, seed=40), device=tiny_device,
                           scenario="camera", calibrate_target_fps=None,
                           default_constraints=CONSTRAINED,
                           retention=RetentionPolicy(max_rows=10))
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        return database

    def test_policy_and_offset_round_trip(self, db, tmp_path):
        db.execute(SQL)
        batch = make_corpus(6, seed=41)
        db.ingest(batch.images, metadata=batch.metadata)  # drops 6 old rows
        assert db.executor.id_offset == 6
        before = db.execute(SQL)
        db.save(tmp_path / "vdb")

        loaded = VisualDatabase.load(tmp_path / "vdb")
        assert loaded.retention_for("images") == RetentionPolicy(max_rows=10)
        assert loaded.executor.id_offset == 6
        after = loaded.execute(SQL)
        np.testing.assert_array_equal(after.image_ids, before.image_ids)
        # Materialized labels survived under the offset: the pre-save query
        # classified the 6 fresh rows, the post-load one classifies nothing.
        assert before.images_classified["komondor"] == 6
        assert after.images_classified["komondor"] == 0
        # And retention keeps being enforced after the reload.
        batch = make_corpus(4, seed=42)
        loaded.ingest(batch.images, metadata=batch.metadata)
        assert len(loaded.corpus) == 10
        assert loaded.executor.id_offset == 10

    def test_v2_save_without_retention_fields_loads(self, db, tmp_path):
        import json

        db.execute(SQL)
        root = db.save(tmp_path / "vdb")
        manifest = json.loads((root / "database.json").read_text())
        manifest["format_version"] = 2
        for entry in manifest["tables"]:
            del entry["retention"]
            del entry["id_offset"]
        (root / "database.json").write_text(json.dumps(manifest))

        loaded = VisualDatabase.load(root)
        assert loaded.retention_for("images") is None
        assert loaded.executor.id_offset == 0
        assert loaded.execute(SQL).images_classified["komondor"] == 0


class TestConcurrentFanoutAndRetention:
    def test_fanout_queries_race_ingest_and_retention(self, tiny_optimizer,
                                                      tiny_device):
        window = 12
        database = connect(
            {"cam_live": make_corpus(window, seed=50),
             "cam_static": make_corpus(10, seed=51)},
            device=tiny_device, scenario="camera", calibrate_target_fps=None,
            default_constraints=CONSTRAINED,
            retention={"cam_live": RetentionPolicy(max_rows=window)})
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        fanout_sql = "SELECT * FROM all_cameras WHERE contains_object(komondor)"
        errors: list[Exception] = []

        def query_loop():
            try:
                for _ in range(6):
                    merged = database.execute(fanout_sql)
                    # Each shard's rows are internally consistent: ids fall
                    # inside that shard's live window at classification time.
                    live = merged.per_table("cam_live")
                    if len(live):
                        ids = live.image_ids
                        assert ids.max() - ids.min() < window
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def ingest_loop():
            try:
                for seed in range(60, 72):
                    batch = make_corpus(4, seed=seed)
                    database.ingest(batch.images, metadata=batch.metadata,
                                    table="cam_live")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=query_loop),
                   threading.Thread(target=ingest_loop)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(database.corpus_for("cam_live")) == window
        # The final state is coherent: a fresh query classifies at most the
        # window and a repeat classifies nothing.
        database.execute(fanout_sql)
        repeat = database.execute(fanout_sql)
        assert repeat.images_classified["cam_live"]["komondor"] == 0
