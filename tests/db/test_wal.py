"""Tests for the segment-based storage engine's durability layer.

Covers the TableWal journal itself (payload-before-line, torn-tail
truncation, generations: rotate/prune), enable_wal/checkpoint/recovery on
VisualDatabase, the crash-recovery property (kill at *every* record boundary
between checkpoint and tail, replay, compare against an independent model of
the log), the save-vs-ingest race fix, WAL-aware close(), segment compaction
and storage_stats, and v2/v3 format compatibility of the v4 loader.
"""

import json
import os
import shutil
import threading

import numpy as np
import pytest

from repro.data.corpus import CorpusSegment, ImageCorpus
from repro.db import RetentionPolicy, TableWal, VisualDatabase, connect
from repro.db.wal import wal_dir, wal_tables
from tests.conftest import TINY_SIZE


def timed_corpus(timestamps):
    """A corpus whose 'timestamp' column is exactly ``timestamps``."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    n = timestamps.size
    return ImageCorpus(
        images=np.random.default_rng(int(timestamps.sum()) % 1000).random(
            (n, TINY_SIZE, TINY_SIZE, 3)),
        metadata={"timestamp": timestamps,
                  "location": np.array(["detroit"] * n)})


def make_segment(timestamps):
    corpus = timed_corpus(timestamps)
    return CorpusSegment.build(corpus.images, corpus.metadata, corpus.content)


def table_state(database, table="cam"):
    """(image_id, timestamp) per surviving row, in row order."""
    return [(row["image_id"], row["timestamp"]) for row in
            database.execute(f"SELECT image_id, timestamp FROM {table}")]


class TestTableWal:
    def test_round_trip_segments_and_markers(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_segment(make_segment([1.0, 2.0]))
        wal.log_drop(1)
        wal.log_retention({"max_rows": 5, "max_age": None,
                           "timestamp_column": "timestamp"})
        wal.log_retention(None)
        wal.close()

        records = list(TableWal(tmp_path, "cam").records())
        assert [r["type"] for r in records] == ["segment", "drop",
                                               "retention", "retention"]
        segment = records[0]["segment"]
        assert isinstance(segment, CorpusSegment)
        np.testing.assert_array_equal(segment.metadata["timestamp"],
                                      [1.0, 2.0])
        assert records[1]["rows"] == 1
        assert records[2]["policy"]["max_rows"] == 5
        assert records[3]["policy"] is None

    def test_attach_record_carries_id_offset(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_attach(make_segment([1.0]), id_offset=7)
        wal.close()
        (record,) = TableWal(tmp_path, "cam").records()
        assert record["type"] == "attach"
        assert record["id_offset"] == 7

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_drop(1)
        wal.log_drop(2)
        wal.close()
        log = wal_dir(tmp_path, "cam") / "log-0.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"type": "drop", "ro')  # crash mid-append

        reopened = TableWal(tmp_path, "cam")
        assert [r["rows"] for r in reopened.records()] == [1, 2]
        # The reopen truncated the torn bytes; appending works again.
        reopened.log_drop(3)
        reopened.close()
        assert [r["rows"] for r in TableWal(tmp_path, "cam").records()] \
            == [1, 2, 3]

    def test_rotate_freezes_generation_and_prune_drops_it(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_segment(make_segment([1.0]))
        assert wal.rotate() == 1
        wal.log_drop(1)
        assert [r["generation"] for r in wal.records()] == [0, 1]
        # Replay floor: a checkpoint that absorbed generation 0 replays >= 1.
        assert [r["type"] for r in wal.records(from_generation=1)] == ["drop"]
        wal.prune(1)
        assert wal.generations() == [1]
        # The pruned generation's payload file went with its log.
        assert not list(wal_dir(tmp_path, "cam").glob("seg-0-*.npz"))
        wal.close()

    def test_records_stream_lazily(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_segment(make_segment([1.0]))
        wal.log_segment(make_segment([2.0]))
        wal.close()
        stream = TableWal(tmp_path, "cam").records()
        assert iter(stream) is stream  # a generator, not a prebuilt list
        first = next(stream)
        # The second segment's payload loads only when the stream reaches
        # it: replay memory tracks one record, not the whole tail.
        np.testing.assert_array_equal(first["segment"].metadata["timestamp"],
                                      [1.0])

    def test_record_count_tracks_append_rotate_prune(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.log_drop(1)
        wal.log_segment(make_segment([1.0]))
        assert wal.record_count() == 2
        wal.rotate()
        wal.log_drop(2)
        assert wal.record_count() == 3
        wal.prune(1)
        assert wal.record_count() == 1
        wal.close()
        # A reopened handle recounts from disk once, then tracks in memory.
        reopened = TableWal(tmp_path, "cam")
        assert reopened.record_count() == 1
        reopened.log_drop(3)
        assert reopened.record_count() == 2
        reopened.close()

    def test_close_is_idempotent_and_appends_after_close_raise(self, tmp_path):
        wal = TableWal(tmp_path, "cam")
        wal.close()
        wal.close()
        assert wal.closed
        with pytest.raises(RuntimeError, match="closed"):
            wal.log_drop(1)

    def test_wal_tables_lists_table_directories(self, tmp_path):
        assert wal_tables(tmp_path) == []
        TableWal(tmp_path, "cam_b").close()
        TableWal(tmp_path, "cam_a").close()
        assert wal_tables(tmp_path) == ["cam_a", "cam_b"]


class TestEnableWal:
    def test_recovers_ingest_and_retention_without_checkpoint(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0, 1.0, 2.0, 3.0])})
        database.enable_wal(tmp_path / "vdb")
        database.set_retention("cam", RetentionPolicy(max_rows=6))
        database.ingest(*_batch([10.0, 11.0, 12.0]), table="cam")
        database.ingest(*_batch([13.0, 14.0]), table="cam")
        expected = table_state(database)
        assert [ts for _, ts in expected] == [2.0, 3.0, 10.0, 11.0,
                                              12.0, 13.0, 14.0][-6:]

        # Simulate a crash: no close(), no checkpoint — load from disk.
        recovered = VisualDatabase.load(tmp_path / "vdb")
        assert table_state(recovered) == expected
        assert recovered.retention_for("cam").max_rows == 6
        # Recovery re-arms the journal: further mutations stay durable.
        recovered.ingest(*_batch([15.0]), table="cam")
        again = VisualDatabase.load(tmp_path / "vdb")
        assert table_state(again) == table_state(recovered)

    def test_enable_wal_twice_raises(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0])})
        database.enable_wal(tmp_path / "vdb")
        with pytest.raises(RuntimeError, match="already enabled"):
            database.enable_wal(tmp_path / "other")

    def test_checkpoint_requires_wal(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0])})
        with pytest.raises(RuntimeError, match="enable_wal"):
            database.checkpoint()

    def test_checkpoint_prunes_log_and_bounds_replay(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0, 1.0])})
        database.enable_wal(tmp_path / "vdb")
        for start in (10.0, 20.0, 30.0):
            database.ingest(*_batch([start, start + 1]), table="cam")
        before = database.executor_for("cam").wal.record_count()
        assert before >= 3
        database.checkpoint()
        wal = database.executor_for("cam").wal
        # The absorbed generations are gone; the live one is empty.
        assert wal.record_count() == 0
        database.ingest(*_batch([40.0]), table="cam")
        recovered = VisualDatabase.load(tmp_path / "vdb")
        assert table_state(recovered) == table_state(database)
        assert database.storage_stats()["checkpoints"] == 2

    def test_checkpoint_writes_fresh_image_and_prunes_old_one(self, tmp_path):
        root = tmp_path / "vdb"
        database = connect({"cam": timed_corpus([0.0, 1.0])})
        database.enable_wal(root)
        [entry] = json.loads((root / "database.json").read_text())["tables"]
        old_image = root / entry["table_dir"]
        assert (old_image / "corpus.npz").exists()

        database.ingest(*_batch([2.0]), table="cam")
        database.checkpoint()
        [after] = json.loads((root / "database.json").read_text())["tables"]
        # Never in place: the checkpoint landed in a new image directory,
        # and the superseded one went only after the new manifest did.
        assert after["table_dir"] != entry["table_dir"]
        assert not old_image.exists()
        assert (root / after["corpus_file"]).exists()

    def test_crash_before_manifest_swap_stays_recoverable(self, tmp_path,
                                                          monkeypatch):
        # The high-severity review scenario: a checkpoint that dies before
        # its manifest lands must leave the *previous* manifest's image and
        # log generations untouched — recovery replays them, and the rows
        # the aborted checkpoint had absorbed are not double-applied.
        root = tmp_path / "vdb"
        database = connect({"cam": timed_corpus([0.0, 1.0])})
        database.enable_wal(root)
        database.ingest(*_batch([2.0]), table="cam")
        database.checkpoint()
        database.ingest(*_batch([3.0]), table="cam")
        expected = table_state(database)

        real_replace = os.replace

        def crash_on_manifest(src, dst, *args, **kwargs):
            if str(dst).endswith("database.json"):
                raise OSError("simulated crash before manifest swap")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crash_on_manifest)
        with pytest.raises(OSError, match="simulated crash"):
            database.checkpoint()
        monkeypatch.undo()

        recovered = VisualDatabase.load(root)
        assert table_state(recovered) == expected

    def test_attach_detach_replace_survive_recovery(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0])})
        database.enable_wal(tmp_path / "vdb")
        database.attach("late", timed_corpus([5.0, 6.0]))
        database.ingest(*_batch([7.0]), table="late")
        database.detach("cam")
        database.register_corpus(timed_corpus([8.0]), name="late")

        recovered = VisualDatabase.load(tmp_path / "vdb")
        assert recovered.tables() == ["late"]
        assert table_state(recovered, "late") == [(0, 8.0)]
        # A detached table's log dir disappears at the next checkpoint.
        recovered.checkpoint()
        assert wal_tables(tmp_path / "vdb") == ["late"]

    def test_close_flushes_and_releases_wal_handles(self, tmp_path):
        # Satellite: close() must close WAL handles, and stay idempotent.
        database = connect({"cam": timed_corpus([0.0])})
        database.enable_wal(tmp_path / "vdb")
        database.ingest(*_batch([1.0]), table="cam")
        wal = database.executor_for("cam").wal
        expected = table_state(database)
        database.close()
        assert wal.closed
        database.close()  # double-close: no error, no re-journaling
        recovered = VisualDatabase.load(tmp_path / "vdb")
        assert table_state(recovered) == expected
        # close() is not detach(): no tombstone was journaled.
        assert recovered.tables() == ["cam"]

    def test_materialized_labels_survive_checkpoint(self, tmp_path,
                                                    tiny_optimizer,
                                                    tiny_device):
        from repro.core.selector import UserConstraints
        from tests.db.test_retention import REFERENCE_PARAMS, make_corpus

        database = connect({"cam": make_corpus(10, seed=3)},
                           device=tiny_device, calibrate_target_fps=None)
        database.register_optimizer("komondor", tiny_optimizer,
                                    reference_params=REFERENCE_PARAMS)
        sql = "SELECT image_id FROM cam WHERE contains_object(komondor)"
        constraints = UserConstraints(max_accuracy_loss=0.1)
        expected = [row["image_id"] for row in
                    database.execute(sql, constraints)]
        database.enable_wal(tmp_path / "vdb")  # checkpoint carries the labels

        recovered = VisualDatabase.load(tmp_path / "vdb")
        stats = recovered.storage_stats()["tables"]["cam"]
        assert stats["materialized_columns"] >= 1
        assert [row["image_id"] for row in
                recovered.execute(sql, constraints)] == expected


def _batch(timestamps):
    corpus = timed_corpus(timestamps)
    return corpus.images, dict(corpus.metadata)


class TestCrashRecoveryProperty:
    """Kill the database at *every* WAL record boundary and recover.

    The reference is an independent model of the log: a plain list of
    (id, timestamp) rows that applies segment/drop/retention records by
    hand.  The model's final state is anchored against the live (uncrashed)
    database, so the log's *content* is verified too — then every prefix of
    the log must recover to the model's state at that prefix.
    """

    def test_every_record_boundary_recovers(self, tmp_path):
        root = tmp_path / "vdb"
        database = connect({"cam": timed_corpus([0.0, 1.0, 2.0, 3.0])})
        database.enable_wal(root)
        database.set_retention("cam",
                               RetentionPolicy(max_rows=8,
                                               timestamp_column="timestamp"))
        clock = 10.0
        rng = np.random.default_rng(42)
        for size in (3, 1, 4, 2, 3):  # N ingests; drops interleave via policy
            database.ingest(*_batch(clock + np.arange(size)), table="cam")
            clock += 10.0
        database.retain()  # an explicit M-th retention sweep (no-op or drop)
        database.set_retention("cam", RetentionPolicy(max_rows=5))
        database.retain()

        wal = database.executor_for("cam").wal
        generation = wal.generation
        records = list(wal.records(from_generation=generation))
        assert len(records) >= 9  # segments + drops + retention markers

        # Model: checkpoint image (enable_wal's) + the log applied by hand.
        rows = [(i, float(i)) for i in range(4)]
        next_id = 4
        snapshots = [list(rows)]
        for record in records:
            if record["type"] == "segment":
                for ts in record["segment"].metadata["timestamp"]:
                    rows.append((next_id, float(ts)))
                    next_id += 1
            elif record["type"] == "drop":
                rows = rows[record["rows"]:]
            snapshots.append(list(rows))
        assert snapshots[-1] == table_state(database)  # anchor the log

        log_name = f"log-{generation}.jsonl"
        log_lines = (wal_dir(root, "cam") / log_name).read_bytes() \
            .splitlines(keepends=True)
        assert len(log_lines) == len(records)

        for boundary in range(len(records) + 1):
            crashed = tmp_path / f"crash-{boundary}"
            shutil.copytree(root, crashed)
            # Kill at this record boundary: the log ends mid-stream.  A
            # stray half-line beyond it simulates the torn final append.
            with open(wal_dir(crashed, "cam") / log_name, "wb") as handle:
                handle.write(b"".join(log_lines[:boundary]))
                if boundary < len(records):
                    handle.write(log_lines[boundary][:7])
            recovered = VisualDatabase.load(crashed)
            assert table_state(recovered) == snapshots[boundary], \
                f"divergence at record boundary {boundary}"
            recovered.close()


class TestSaveVsIngestRace:
    def test_save_during_concurrent_ingest_is_consistent(self, tmp_path):
        # Satellite: each table is captured under its shard lock, so a save
        # taken mid-ingest never interleaves a half-applied mutation.
        database = connect({"cam": timed_corpus([0.0, 1.0])},
                           retention=RetentionPolicy(max_rows=12))
        stop = threading.Event()
        errors = []

        def churn():
            clock = 100.0
            try:
                while not stop.is_set():
                    database.ingest(*_batch([clock, clock + 1]), table="cam")
                    clock += 10.0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for index in range(5):
                path = tmp_path / f"save-{index}"
                database.save(path)
                loaded = VisualDatabase.load(path)
                state = table_state(loaded)
                # Internally consistent: ids contiguous, window respected.
                ids = [image_id for image_id, _ in state]
                assert ids == list(range(ids[0], ids[0] + len(ids)))
                assert len(ids) <= 12
                loaded.close()
        finally:
            stop.set()
            thread.join()
        assert errors == []


class TestSegmentsAndCompaction:
    def test_ingest_appends_segments_and_compact_folds_them(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0, 1.0])})
        for start in (10.0, 20.0, 30.0):
            database.ingest(*_batch([start]), table="cam")
        stats = database.storage_stats()
        assert stats["tables"]["cam"]["segments"] == 4
        folded = database.compact()
        assert folded == {"cam": 3}
        assert database.storage_stats()["tables"]["cam"]["segments"] == 1
        # Row order, ids and values are untouched by compaction.
        assert table_state(database) == [(0, 0.0), (1, 1.0), (2, 10.0),
                                         (3, 20.0), (4, 30.0)]

    def test_compact_min_rows_leaves_large_segments_alone(self):
        corpus = ImageCorpus(
            images=np.zeros((8, TINY_SIZE, TINY_SIZE, 3)),
            metadata={"timestamp": np.arange(8.0)})
        for start in (10.0, 11.0, 12.0):
            corpus.append(np.zeros((1, TINY_SIZE, TINY_SIZE, 3)),
                          metadata={"timestamp": np.array([start])})
        assert corpus.segment_count == 4
        corpus.compact(min_rows=4)  # folds only the run of 1-row segments
        assert corpus.segment_rows() == [8, 3]

    def test_retention_aligned_to_segments_drops_whole_segments(self):
        policy = RetentionPolicy(max_rows=4, align_to_segments=True)
        corpus = ImageCorpus(
            images=np.zeros((3, TINY_SIZE, TINY_SIZE, 3)),
            metadata={"timestamp": np.arange(3.0)})
        corpus.append(np.zeros((3, TINY_SIZE, TINY_SIZE, 3)),
                      metadata={"timestamp": np.arange(3.0, 6.0)})
        # Exact semantics would drop 2 rows; alignment rounds down to 0
        # (mid-segment) so no segment is split.
        assert policy.rows_to_drop(corpus) == 0
        corpus.append(np.zeros((2, TINY_SIZE, TINY_SIZE, 3)),
                      metadata={"timestamp": np.arange(6.0, 8.0)})
        # Now the first whole segment (3 rows <= 4 excess) can go.
        assert policy.rows_to_drop(corpus) == 3
        assert RetentionPolicy.from_dict(policy.to_dict()) == policy

    def test_storage_stats_shape(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0])})
        stats = database.storage_stats()
        assert stats["wal_enabled"] is False
        assert stats["checkpoints"] == 0
        assert set(stats["tables"]) == {"cam"}
        assert stats["tables"]["cam"]["wal_records"] is None
        database.enable_wal(tmp_path / "vdb")
        stats = database.storage_stats()
        assert stats["wal_enabled"] is True
        assert stats["checkpoints"] == 1
        assert stats["tables"]["cam"]["wal_records"] == 0


class TestFormatCompatibility:
    def _manifest(self, root):
        return json.loads((root / "database.json").read_text())

    def test_v3_manifest_still_loads(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0, 1.0, 2.0])},
                           retention={"cam": RetentionPolicy(max_rows=8)})
        database.ingest(*_batch([3.0]), table="cam")
        expected = table_state(database)
        root = database.save(tmp_path / "vdb")
        manifest = self._manifest(root)
        # A v3 writer: no wal key, no wal_generation entries.
        manifest["format_version"] = 3
        manifest.pop("wal", None)
        for entry in manifest["tables"]:
            entry.pop("wal_generation", None)
        (root / "database.json").write_text(json.dumps(manifest))

        loaded = VisualDatabase.load(root)
        assert table_state(loaded) == expected
        assert loaded.retention_for("cam").max_rows == 8

    def test_v2_manifest_still_loads(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0, 1.0, 2.0])})
        expected = table_state(database)
        root = database.save(tmp_path / "vdb")
        manifest = self._manifest(root)
        # A v2 writer predates retention and id offsets entirely.
        manifest["format_version"] = 2
        manifest.pop("wal", None)
        for entry in manifest["tables"]:
            for key in ("wal_generation", "retention", "id_offset"):
                entry.pop(key, None)
        (root / "database.json").write_text(json.dumps(manifest))

        loaded = VisualDatabase.load(root)
        assert table_state(loaded) == expected
        assert loaded.retention_for("cam") is None

    def test_unknown_format_rejected(self, tmp_path):
        database = connect({"cam": timed_corpus([0.0])})
        root = database.save(tmp_path / "vdb")
        manifest = self._manifest(root)
        manifest["format_version"] = 99
        (root / "database.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported database format"):
            VisualDatabase.load(root)
