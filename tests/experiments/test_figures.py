"""Tests that every figure/table regeneration function produces sound output.

These run at smoke scale against the session-cached workspace; the committed
benchmarks run the same functions at the default scale.
"""

import numpy as np
import pytest

from repro.experiments.ablation import TRANSFORM_SUBSETS, depth_analysis, transform_ablation
from repro.experiments.scenarios import (
    frontier_example,
    reference_only_evaluation,
    scenario_awareness_table,
    scenario_frontiers,
)
from repro.experiments.speedups import (
    average_speedups,
    baseline_evaluation,
    design_space_comparison,
    fastest_throughput,
)


CATEGORY = "komondor"


class TestFigure4And9:
    def test_frontier_example_structure(self, smoke_workspace):
        comparison = frontier_example(smoke_workspace, CATEGORY)
        assert comparison.all_points
        assert comparison.aware_frontier
        assert comparison.oblivious_frontier
        # The aware frontier is at least as good as the re-priced oblivious one.
        assert comparison.awareness_gain() >= 1.0 - 1e-9

    def test_scenario_frontiers_cover_requested_categories(self, smoke_workspace):
        comparisons = scenario_frontiers(smoke_workspace,
                                         categories=[CATEGORY, "scorpion"])
        assert [c.category for c in comparisons] == [CATEGORY, "scorpion"]

    def test_unknown_category_raises(self, smoke_workspace):
        with pytest.raises(KeyError):
            frontier_example(smoke_workspace, "zebra")


class TestFigure5:
    def test_design_space_comparison(self, smoke_workspace):
        comparison = design_space_comparison(smoke_workspace, CATEGORY)
        # TAHOMA's space strictly contains more cascade options.
        assert len(comparison.tahoma_points) > len(comparison.baseline_points)
        # And its frontier is no slower anywhere (ALC speedup >= 1).
        assert comparison.tahoma_speedup() >= 1.0 - 1e-9


class TestFigure6:
    def test_speedups_positive_and_largest_for_infer_only(self, smoke_workspace):
        rows = average_speedups(smoke_workspace)
        by_name = {row.scenario_name: row for row in rows}
        assert set(by_name) == {"infer_only", "ongoing", "camera", "archive"}
        for row in rows:
            assert row.vs_reference > 0
            assert row.vs_baseline_average > 0
        # Data handling shrinks the advantage: INFER ONLY shows the largest
        # speedup over the reference classifier, ARCHIVE the smallest.
        assert by_name["infer_only"].vs_reference >= by_name["archive"].vs_reference

    def test_tahoma_beats_reference_under_infer_only(self, smoke_workspace):
        rows = average_speedups(smoke_workspace, ("infer_only",))
        assert rows[0].vs_reference > 1.0


class TestFigure7:
    def test_fastest_cascade_beats_reference_everywhere(self, smoke_workspace):
        rows = fastest_throughput(smoke_workspace)
        for row in rows:
            assert row.tahoma_fastest_fps > row.reference_fps
            assert row.speedup > 1.0

    def test_reference_near_calibrated_anchor_under_infer_only(self, smoke_workspace):
        rows = fastest_throughput(smoke_workspace, ("infer_only",))
        assert rows[0].reference_fps == pytest.approx(75.0, rel=0.05)


class TestTable3:
    def test_awareness_rows_structure(self, smoke_workspace):
        rows = scenario_awareness_table(smoke_workspace, loss_levels=(0.0, 0.05),
                                        scenario_names=("archive", "camera"))
        assert len(rows) == 4
        for row in rows:
            assert row.oblivious_fps > 0
            assert row.aware_fps > 0
            # Scenario awareness can only help (both pick from the same space).
            assert row.aware_fps >= row.oblivious_fps - 1e-9

    def test_zero_loss_budget_gains_nothing_or_little(self, smoke_workspace):
        rows = scenario_awareness_table(smoke_workspace, loss_levels=(0.0,),
                                        scenario_names=("camera",))
        assert rows[0].gain_percent >= 0.0


class TestFigure10:
    def test_transform_ablation_structure(self, smoke_workspace):
        rows = transform_ablation(smoke_workspace)
        assert {row.category for row in rows} == set(smoke_workspace.category_names())
        for row in rows:
            assert set(row.subset_throughputs) == set(TRANSFORM_SUBSETS)
            # The full transformation set is never worse than using none.
            assert (row.subset_throughputs["full"]
                    >= row.subset_throughputs["none"] - 1e-9)
            assert row.ordered()[-1] == row.subset_throughputs["full"]


class TestFigure11:
    def test_depth_analysis_rows(self, smoke_workspace):
        rows = depth_analysis(smoke_workspace, CATEGORY, max_depth=2, pool_size=4)
        assert len(rows) == 4  # depths 1 and 2, each with and without reference
        n_cascades = [row.n_cascades for row in rows]
        assert n_cascades == sorted(n_cascades)
        for row in rows:
            assert row.average_throughput > 0
            assert row.frontier

    def test_deeper_cascades_never_lose_throughput(self, smoke_workspace):
        rows = depth_analysis(smoke_workspace, CATEGORY, max_depth=2, pool_size=4)
        without_reference = [row for row in rows if not row.with_reference_tail]
        assert (without_reference[-1].average_throughput
                >= without_reference[0].average_throughput - 1e-9)

    def test_invalid_depth(self, smoke_workspace):
        with pytest.raises(ValueError):
            depth_analysis(smoke_workspace, CATEGORY, max_depth=0)


class TestBaselineHelpers:
    def test_reference_only_evaluation(self, smoke_workspace):
        predicate = smoke_workspace.predicates[CATEGORY]
        profiler = smoke_workspace.profiler("infer_only")
        evaluation = reference_only_evaluation(predicate, profiler)
        assert evaluation.cascade.depth == 1
        assert evaluation.cascade.ends_in_reference()

    def test_baseline_evaluation_is_subset_of_design_space(self, smoke_workspace):
        predicate = smoke_workspace.predicates[CATEGORY]
        profiler = smoke_workspace.profiler("camera")
        baseline = baseline_evaluation(predicate, profiler,
                                       smoke_workspace.scale.image_size)
        assert len(baseline) < predicate.optimizer.n_cascades
