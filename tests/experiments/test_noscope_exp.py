"""Tests for the NoScope comparison experiment (Figure 8) at smoke scale."""

import numpy as np
import pytest

from repro.data.video import CORAL_PRESET, generate_video_stream
from repro.experiments.noscope_exp import noscope_comparison, split_stream
from repro.experiments.presets import SMOKE_SCALE


class TestSplitStream:
    def test_split_sizes_and_order(self):
        stream = generate_video_stream(CORAL_PRESET, np.random.default_rng(0))
        splits, held_out = split_stream(stream, train_fraction=0.4,
                                        config_fraction=0.2)
        assert len(splits.train) == int(len(stream) * 0.4)
        assert len(splits.config) == int(len(stream) * 0.2)
        assert len(held_out) == len(stream) - len(splits.train) - len(splits.config)
        # Held-out frames stay in temporal order (same as the stream's tail).
        np.testing.assert_allclose(held_out.images[0],
                                   stream.frames[len(splits.train) + len(splits.config)])

    def test_invalid_fractions(self):
        stream = generate_video_stream(CORAL_PRESET, np.random.default_rng(0))
        with pytest.raises(ValueError):
            split_stream(stream, train_fraction=0.8, config_fraction=0.3)
        with pytest.raises(ValueError):
            split_stream(stream, train_fraction=0.0, config_fraction=0.2)


class TestNoScopeComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return noscope_comparison(SMOKE_SCALE, stream_names=("coral",), seed=0)

    def test_one_result_per_stream(self, results):
        assert len(results) == 1
        assert results[0].stream_name == "coral"

    def test_both_pipelines_produce_valid_results(self, results):
        comparison = results[0]
        for result in (comparison.noscope, comparison.tahoma_dd):
            assert result.n_frames > 0
            assert 0.0 <= result.accuracy <= 1.0
            assert result.throughput > 0
            assert result.n_reused + result.n_specialized == result.n_frames

    def test_tahoma_dd_at_least_as_fast_as_noscope(self, results):
        """The Figure 8 headline: TAHOMA+DD outperforms NoScope."""
        assert results[0].speedup >= 1.0

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            noscope_comparison(SMOKE_SCALE, stream_names=("shibuya",))
