"""Tests for the experiment scale presets."""

import pytest

from repro.experiments.presets import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    simulation_scenarios,
)


def test_paper_scale_matches_paper_grid():
    """The PAPER preset reproduces the paper's 360-model design space."""
    assert PAPER_SCALE.n_model_specs() == 360
    assert PAPER_SCALE.resolutions == (30, 60, 120, 224)
    assert len(PAPER_SCALE.color_modes) == 5
    assert PAPER_SCALE.precision_targets == (0.91, 0.93, 0.95, 0.97, 0.99)
    assert len(PAPER_SCALE.categories) == 10


def test_default_scale_sweeps_every_dimension():
    """The reduced scale keeps every dimension of the paper's grid."""
    assert len(DEFAULT_SCALE.resolutions) >= 2
    assert set(DEFAULT_SCALE.color_modes) == {"rgb", "red", "green", "blue", "gray"}
    assert len(DEFAULT_SCALE.conv_layers) >= 2
    assert len(DEFAULT_SCALE.precision_targets) >= 2
    assert len(DEFAULT_SCALE.categories) == 10
    assert DEFAULT_SCALE.n_model_specs() >= 30


def test_smoke_scale_is_small():
    assert SMOKE_SCALE.n_model_specs() <= 16
    assert len(SMOKE_SCALE.categories) == 2


def test_architectures_and_transforms_materialize():
    archs = SMOKE_SCALE.architectures()
    transforms = SMOKE_SCALE.transforms()
    assert archs and transforms
    assert all(a.fits_input(max(SMOKE_SCALE.resolutions)) for a in archs)


def test_simulation_scenarios_cover_paper_set():
    scenarios = simulation_scenarios()
    assert set(scenarios) == {"infer_only", "archive", "ongoing", "camera"}
    assert scenarios["archive"].include_load and scenarios["archive"].include_transform
    assert not scenarios["infer_only"].include_load


def test_scales_have_distinct_names():
    assert len({SMOKE_SCALE.name, DEFAULT_SCALE.name, PAPER_SCALE.name}) == 3
