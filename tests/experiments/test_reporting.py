"""Tests for the text reporting helpers."""

import pytest

from repro.experiments.reporting import format_float, format_table, to_csv_lines


class TestFormatFloat:
    def test_large_numbers_get_thousands_separator(self):
        assert format_float(12345.6) == "12,346"

    def test_small_numbers_keep_digits(self):
        assert format_float(3.14159, digits=2) == "3.14"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_strings_pass_through(self):
        assert format_float("archive") == "archive"

    def test_bools_pass_through(self):
        assert format_float(True) == "True"


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["scenario", "fps"],
                             [["archive", 57.5], ["camera", 107.1]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "scenario" in lines[0]
        assert "archive" in lines[2]
        # All lines padded to the same width structure.
        assert lines[1].startswith("-")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestCsv:
    def test_round_trip_structure(self):
        lines = to_csv_lines(["a", "b"], [[1, 2], [3, 4]])
        assert lines == ["a,b", "1,2", "3,4"]
