"""Unit tests for the experiment result dataclasses (no workspace needed)."""

import numpy as np
import pytest

from repro.baselines.noscope import PipelineResult
from repro.costs.profiler import CostBreakdown
from repro.experiments.ablation import TransformAblationRow
from repro.experiments.noscope_exp import StreamComparison
from repro.experiments.scenarios import AwarenessRow
from repro.experiments.speedups import FastestRow


class TestAwarenessRow:
    def test_gain_percent(self):
        row = AwarenessRow("camera", 0.05, oblivious_fps=100.0, aware_fps=150.0)
        assert row.gain_percent == pytest.approx(50.0)

    def test_zero_oblivious_gain_is_infinite(self):
        row = AwarenessRow("camera", 0.05, oblivious_fps=0.0, aware_fps=150.0)
        assert row.gain_percent == float("inf")


class TestFastestRow:
    def test_speedup_and_accuracy_drop(self):
        row = FastestRow("infer_only", reference_fps=75.0,
                         tahoma_fastest_fps=15000.0,
                         tahoma_fastest_accuracy=0.85, reference_accuracy=0.95)
        assert row.speedup == pytest.approx(200.0)
        assert row.accuracy_drop == pytest.approx(0.10)

    def test_zero_reference_fps(self):
        row = FastestRow("x", 0.0, 10.0, 0.9, 0.9)
        assert row.speedup == float("inf")


class TestTransformAblationRow:
    def test_ordered_follows_canonical_subset_order(self):
        row = TransformAblationRow("acorn", {"none": 1.0, "color": 2.0,
                                             "resize": 3.0, "full": 4.0})
        assert row.ordered() == [1.0, 2.0, 3.0, 4.0]


def make_pipeline_result(name, fps, n_frames=100, n_reused=20, n_oracle=5):
    n_specialized = n_frames - n_reused
    return PipelineResult(name=name, labels=np.zeros(n_frames, dtype=np.int64),
                          accuracy=0.9, n_frames=n_frames, n_reused=n_reused,
                          n_specialized=n_specialized, n_oracle=n_oracle,
                          cost=CostBreakdown(infer_s=1.0 / fps))


class TestPipelineResult:
    def test_fractions(self):
        result = make_pipeline_result("noscope", fps=1000.0)
        assert result.reuse_fraction == pytest.approx(0.2)
        assert result.oracle_fraction == pytest.approx(5 / 80)
        assert result.throughput == pytest.approx(1000.0)

    def test_zero_frames_edge_cases(self):
        result = PipelineResult(name="x", labels=np.zeros(0, dtype=np.int64),
                                accuracy=float("nan"), n_frames=0, n_reused=0,
                                n_specialized=0, n_oracle=0, cost=CostBreakdown())
        assert result.reuse_fraction == 0.0
        assert result.oracle_fraction == 0.0


class TestStreamComparison:
    def test_speedup_ratio(self):
        comparison = StreamComparison(
            stream_name="coral",
            noscope=make_pipeline_result("noscope", fps=1000.0),
            tahoma_dd=make_pipeline_result("tahoma+dd", fps=4000.0))
        assert comparison.speedup == pytest.approx(4.0)
