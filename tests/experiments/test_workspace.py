"""Tests for the experiment workspace (smoke scale, session-cached)."""

import pytest

from repro.experiments.presets import SMOKE_SCALE
from repro.experiments.workspace import get_workspace


def test_workspace_contains_all_scale_categories(smoke_workspace):
    assert set(smoke_workspace.category_names()) == set(SMOKE_SCALE.categories)


def test_each_predicate_is_initialized(smoke_workspace):
    for predicate in smoke_workspace.predicates.values():
        assert predicate.optimizer.n_models == SMOKE_SCALE.n_model_specs()
        assert predicate.optimizer.n_cascades > 0
        assert predicate.reference_model.is_reference


def test_device_calibrated_to_reference_anchor(smoke_workspace):
    reference = next(iter(smoke_workspace.predicates.values())).reference_model
    fps = 1.0 / smoke_workspace.device.inference_time(reference.flops)
    assert fps == pytest.approx(SMOKE_SCALE.reference_target_fps, rel=1e-6)


def test_profilers_cover_all_scenarios(smoke_workspace):
    profilers = smoke_workspace.profilers()
    assert set(profilers) == {"infer_only", "archive", "ongoing", "camera"}
    assert all(p.cost_resolution == SMOKE_SCALE.cost_resolution
               for p in profilers.values())


def test_profiler_lookup_unknown_scenario(smoke_workspace):
    with pytest.raises(KeyError):
        smoke_workspace.profiler("moonbase")


def test_workspace_cache_returns_same_object(smoke_workspace):
    assert get_workspace(SMOKE_SCALE) is smoke_workspace


def test_reference_is_slowest_model(smoke_workspace):
    """The reference classifier's FLOP count dwarfs every specialized model's."""
    for predicate in smoke_workspace.predicates.values():
        reference_flops = predicate.reference_model.flops
        max_specialized = max(model.flops for model in predicate.models)
        assert reference_flops > 3 * max_specialized
