"""End-to-end integration tests: the full TAHOMA pipeline on one predicate."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.experiments.scenarios import reference_only_evaluation


class TestFullPipeline:
    """Exercises initialize -> evaluate -> select -> query on the tiny fixtures."""

    def test_selected_cascade_dominates_reference(self, tiny_optimizer, tiny_splits,
                                                  infer_only_profiler,
                                                  smoke_workspace):
        """The paper's headline claim at miniature scale: there is a cascade at
        least as accurate as the reference classifier and much faster."""
        frontier = tiny_optimizer.frontier(infer_only_profiler)
        from repro.core.cascade import Cascade, CascadeLevel
        from repro.core.evaluator import evaluate_cascade

        reference = Cascade((CascadeLevel(tiny_optimizer.reference_model, None),))
        reference_eval = evaluate_cascade(reference, tiny_optimizer.cache,
                                          infer_only_profiler)
        at_least_as_accurate = [e for e in frontier
                                if e.accuracy >= reference_eval.accuracy]
        assert at_least_as_accurate, "no cascade matches the reference accuracy"
        best = max(at_least_as_accurate, key=lambda e: e.throughput)
        assert best.throughput > reference_eval.throughput

    def test_scenario_changes_selected_cascade_cost(self, tiny_optimizer,
                                                    infer_only_profiler,
                                                    camera_profiler):
        constraints = UserConstraints(max_accuracy_loss=0.1)
        infer_choice = tiny_optimizer.select(infer_only_profiler, constraints)
        camera_choice = tiny_optimizer.select(camera_profiler, constraints)
        # Under CAMERA the same cascade must be no faster than under INFER ONLY
        # (it pays extra transform costs); the selected cascades may differ.
        assert camera_choice.throughput <= infer_choice.throughput + 1e-9

    def test_query_results_match_simulated_accuracy(self, tiny_optimizer,
                                                    tiny_splits,
                                                    camera_profiler):
        chosen = tiny_optimizer.select(camera_profiler,
                                       UserConstraints(max_accuracy_loss=0.05))
        labels = tiny_optimizer.query(tiny_splits.eval.images, chosen)
        accuracy = float((labels == tiny_splits.eval.labels).mean())
        assert accuracy == pytest.approx(chosen.accuracy)

    def test_cascades_beat_chance_on_held_out_data(self, tiny_optimizer,
                                                   tiny_splits,
                                                   infer_only_profiler):
        chosen = tiny_optimizer.select(infer_only_profiler)
        assert chosen.accuracy > 0.6


class TestWorkspaceConsistency:
    def test_every_predicate_has_fast_accurate_cascades(self, smoke_workspace):
        profiler = smoke_workspace.profiler("infer_only")
        for name, predicate in smoke_workspace.predicates.items():
            frontier = predicate.optimizer.frontier(profiler)
            reference_eval = reference_only_evaluation(predicate, profiler)
            best_accuracy = max(e.accuracy for e in frontier)
            assert best_accuracy >= reference_eval.accuracy - 0.1, name

    def test_frontier_cascades_executable_end_to_end(self, smoke_workspace):
        """Every Pareto-optimal cascade actually runs over raw images."""
        profiler = smoke_workspace.profiler("camera")
        predicate = smoke_workspace.predicates["komondor"]
        images = predicate.splits.eval.images[:8]
        for evaluation in predicate.optimizer.frontier(profiler)[:5]:
            labels = evaluation.cascade.classify(images)
            assert labels.shape == (8,)
