"""Integration test: persist the model repository, reload it in a fresh
optimizer, and answer a SQL-parsed query with it.

This mirrors the deployment the paper envisions: system initialization runs
once per predicate (expensive), its artifacts are stored, and query time only
loads the repository, selects a cascade for the current scenario and runs it.
"""

import numpy as np
import pytest

from repro.core.persistence import load_optimizer, save_optimizer
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.query.processor import QueryProcessor
from repro.query.sql import parse_query
from tests.conftest import TINY_SIZE

REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}


@pytest.fixture(scope="module")
def reloaded_optimizer(tmp_path_factory, tiny_optimizer):
    root = tmp_path_factory.mktemp("repo")
    save_optimizer(tiny_optimizer, root, reference_params=REFERENCE_PARAMS)
    return load_optimizer(root)


def test_reloaded_optimizer_answers_sql_query(reloaded_optimizer, camera_profiler):
    corpus = generate_corpus((get_category("komondor"),), n_images=20,
                             image_size=TINY_SIZE, rng=np.random.default_rng(5),
                             positive_rate=0.8)
    processor = QueryProcessor(corpus, {"komondor": reloaded_optimizer},
                               camera_profiler)
    query = parse_query(
        "SELECT * FROM images WHERE contains_object(komondor)",
        constraints=UserConstraints(max_accuracy_loss=0.1))
    result = processor.execute(query)

    assert result.images_classified["komondor"] == len(corpus)
    assert "contains_komondor" in result.relation
    assert 0 <= len(result) <= len(corpus)


def test_reloaded_selection_is_equivalent_to_original(reloaded_optimizer,
                                                      tiny_optimizer,
                                                      tiny_splits,
                                                      camera_profiler):
    """Selection quality survives the round trip.

    Ties between equally good cascades may be broken differently after the
    round trip (floating-point last-bit differences in the restored cached
    probabilities), so the check is on the selected operating point, not on
    the cascade's identity.
    """
    constraints = UserConstraints(max_accuracy_loss=0.05)
    original_choice = tiny_optimizer.select(camera_profiler, constraints)
    reloaded_choice = reloaded_optimizer.select(camera_profiler, constraints)
    assert reloaded_choice.accuracy == pytest.approx(original_choice.accuracy)
    assert reloaded_choice.throughput == pytest.approx(original_choice.throughput,
                                                       rel=1e-3)

    # And the same cascade, executed from the reloaded weights, reproduces the
    # original labels exactly.
    images = tiny_splits.eval.images[:12]
    original_labels = tiny_optimizer.query(images, original_choice)
    matching = next(c for c in reloaded_optimizer.cascades
                    if c.name == original_choice.cascade.name)
    reloaded_labels = reloaded_optimizer.query(images, matching)
    np.testing.assert_array_equal(original_labels, reloaded_labels)
