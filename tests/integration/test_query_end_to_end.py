"""Integration test: the motivating query from the paper's introduction.

"Find images from Detroit containing a komondor" decomposes into a metadata
predicate (location == 'detroit') and a binary content predicate
(contains_object(komondor)); the query processor must evaluate the cheap
metadata predicate first and run the selected cascade only on the survivors.
"""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query, QueryProcessor
from tests.conftest import TINY_SIZE


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus((get_category("komondor"),), n_images=30,
                           image_size=TINY_SIZE, rng=np.random.default_rng(21),
                           positive_rate=0.9)


def test_detroit_komondor_query(corpus, tiny_optimizer, camera_profiler):
    processor = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                               camera_profiler)
    query = Query(
        metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
        content_predicates=(ContainsObject("komondor"),),
        constraints=UserConstraints(max_accuracy_loss=0.05))
    result = processor.execute(query)

    detroit_mask = corpus.metadata["location"] == "detroit"
    # Only Detroit images were classified.
    assert result.images_classified["komondor"] == int(detroit_mask.sum())
    # Every selected row is from Detroit.
    assert all(result.relation["location"] == "detroit")
    # The virtual column exists and is binary.
    assert set(np.unique(result.relation["contains_komondor"])) <= {0, 1}
    # The chosen cascade honours the 5% relative accuracy budget on the
    # optimizer's own evaluation data.
    frontier = tiny_optimizer.frontier(camera_profiler)
    best = max(e.accuracy for e in frontier)
    assert result.cascades_used["komondor"].accuracy >= best * 0.95 - 1e-9


def test_follow_up_query_reuses_materialized_column(corpus, tiny_optimizer,
                                                    camera_profiler):
    processor = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                               camera_profiler)
    broad = Query(content_predicates=(ContainsObject("komondor"),))
    processor.execute(broad)
    narrow = Query(
        metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
        content_predicates=(ContainsObject("komondor"),))
    result = processor.execute(narrow)
    # Everything needed was already materialized by the broad query.
    assert result.images_classified["komondor"] == 0
