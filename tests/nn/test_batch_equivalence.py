"""Batched-vs-per-row equivalence: the batch dimension must be inert.

Every registered layer (and the full cascade classify path) must produce,
for a batch, exactly what it produces row by row — across batch sizes
including the degenerate batch of one.  This is the property the shape
contracts assert statically; these tests pin it dynamically before any
vectorization refactor.
"""

import numpy as np
import pytest

from repro.core.cascade import Cascade, CascadeLevel
from repro.core.model import TrainedModel
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.thresholds import DecisionThresholds
from repro.nn.blocks import ResidualBlock
from repro.nn.layers import (BatchNorm, Conv2D, Dense, Dropout, Flatten,
                             GlobalAveragePool, MaxPool2D, ReLU, Sigmoid,
                             Softmax)
from repro.nn.network import Sequential
from repro.transforms.spec import TransformSpec

BATCH_SIZES = (1, 2, 7, 64)


def _layer_cases():
    rng = np.random.default_rng(7)
    dropout = Dropout(0.5)
    dropout.training = False  # eval mode is deterministic and row-independent
    batchnorm = BatchNorm(12)
    batchnorm.training = False  # running statistics, not batch statistics
    return [
        ("conv2d", Conv2D(3, 4, kernel_size=3, rng=rng), (6, 6, 3)),
        ("maxpool", MaxPool2D(2), (6, 6, 3)),
        ("gap", GlobalAveragePool(), (6, 6, 3)),
        ("flatten", Flatten(), (2, 3, 2)),
        ("dense", Dense(12, 5, rng=rng), (12,)),
        ("relu", ReLU(), (12,)),
        ("sigmoid", Sigmoid(), (12,)),
        ("softmax", Softmax(), (12,)),
        ("dropout-eval", dropout, (12,)),
        ("batchnorm-eval", batchnorm, (12,)),
        ("residual", ResidualBlock(3, 5), (6, 6, 3)),
    ]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize(
    "layer,row_shape",
    [pytest.param(layer, shape, id=name)
     for name, layer, shape in _layer_cases()])
def test_layer_batch_matches_per_row(layer, row_shape, batch_size):
    x = np.random.default_rng(batch_size).normal(size=(batch_size, *row_shape))
    batched = layer.forward(x)
    per_row = np.concatenate(
        [layer.forward(x[i:i + 1]) for i in range(batch_size)], axis=0)
    assert batched.shape[0] == batch_size
    np.testing.assert_allclose(batched, per_row, rtol=1e-10, atol=1e-12)


def _make_cascade():
    rng = np.random.default_rng(11)
    levels = []
    for resolution, mode in ((8, "gray"), (8, "rgb")):
        spec = ModelSpec(ArchitectureSpec(1, 4, 8), TransformSpec(resolution, mode))
        network = spec.build(rng=rng)
        model = TrainedModel(name=f"m-{mode}", network=network,
                             transform=spec.transform,
                             architecture=spec.architecture, kind="specialized")
        levels.append(CascadeLevel(model, DecisionThresholds(0.3, 0.7, 0.95)))
    levels[-1] = CascadeLevel(levels[-1].model, None)  # terminal level
    return Cascade(tuple(levels))


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_cascade_classify_batch_matches_per_row(batch_size):
    cascade = _make_cascade()
    images = np.random.default_rng(batch_size).random((batch_size, 16, 16, 3))
    batched = cascade.classify(images)
    per_row = np.concatenate(
        [cascade.classify(images[i:i + 1]) for i in range(batch_size)])
    assert batched.shape == (batch_size,)
    assert batched.dtype == np.int64
    np.testing.assert_array_equal(batched, per_row)


class TestBatchOfOneRegression:
    """A batch of one must keep its batch dimension (never collapse to 0-d)."""

    def _net(self, out_units):
        rng = np.random.default_rng(3)
        return Sequential([
            Conv2D(3, 4, 3, rng=rng), ReLU(), MaxPool2D(2),
            Flatten(), Dense(4 * 4 * 4, out_units, rng=rng), Sigmoid(),
        ], input_shape=(8, 8, 3))

    def test_predict_proba_single_output_batch_of_one(self):
        net = self._net(1)
        out = net.predict_proba(np.random.default_rng(0).random((1, 8, 8, 3)))
        assert out.shape == (1,)

    def test_predict_proba_two_outputs_batch_of_one(self):
        net = self._net(2)
        out = net.predict_proba(np.random.default_rng(0).random((1, 8, 8, 3)))
        assert out.shape == (1,)

    def test_predict_proba_wide_output_keeps_batch(self):
        net = self._net(5)
        out = net.predict_proba(np.random.default_rng(0).random((1, 8, 8, 3)))
        assert out.shape == (1, 5)

    def test_cascade_classify_batch_of_one(self):
        cascade = _make_cascade()
        labels = cascade.classify(np.random.default_rng(0).random((1, 16, 16, 3)))
        assert labels.shape == (1,)
