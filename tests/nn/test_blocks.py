"""Tests for the residual block composite layer."""

import numpy as np
import pytest

from repro.nn.blocks import ResidualBlock
from repro.nn.layers import Dense, Flatten, GlobalAveragePool, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.train import fit


def test_forward_shape_same_channels():
    block = ResidualBlock(4, 4)
    x = np.random.default_rng(0).random((2, 6, 6, 4))
    assert block.forward(x).shape == (2, 6, 6, 4)


def test_forward_shape_projection():
    block = ResidualBlock(3, 8)
    x = np.random.default_rng(0).random((2, 6, 6, 3))
    assert block.forward(x).shape == (2, 6, 6, 8)
    assert block.project is not None


def test_no_projection_when_channels_match():
    assert ResidualBlock(4, 4).project is None


def test_params_exposed_for_optimizer():
    block = ResidualBlock(3, 8)
    assert "conv1.weight" in block.params
    assert "project.weight" in block.params
    assert block.num_parameters() > 0


def test_backward_populates_grads_and_shapes():
    rng = np.random.default_rng(1)
    block = ResidualBlock(3, 5, rng=rng)
    x = rng.standard_normal((2, 6, 6, 3))
    out = block.forward(x, training=True)
    grad = block.backward(np.ones_like(out))
    assert grad.shape == x.shape
    assert set(block.grads) == set(block.params)


def test_flops_larger_than_single_conv():
    block = ResidualBlock(3, 8)
    assert block.flops((10, 10, 3)) > block.conv1.flops((10, 10, 3))


def test_residual_network_trains():
    """A small residual classifier learns a simple bright-patch task."""
    rng = np.random.default_rng(2)
    x = rng.random((80, 8, 8, 3)) * 0.3
    y = rng.integers(0, 2, 80)
    x[y == 1, 2:6, 2:6, :] += 0.6
    net = Sequential([
        ResidualBlock(3, 6, rng=rng),
        GlobalAveragePool(),
        Dense(6, 8, rng=rng), ReLU(),
        Dense(8, 1, rng=rng), Sigmoid(),
    ], input_shape=(8, 8, 3))
    history = fit(net, x, y, epochs=10, batch_size=16,
                  optimizer=Adam(0.03), rng=rng)
    assert history.train_accuracy[-1] >= 0.75


def test_output_shape_inference():
    block = ResidualBlock(3, 8)
    assert block.output_shape((12, 12, 3)) == (12, 12, 8)


def test_set_parameters_reaches_sublayers():
    """Regression test: loading weights into a network containing composite
    blocks must update the sublayers the forward pass actually uses."""
    x = np.random.default_rng(5).random((2, 6, 6, 3))
    source = Sequential([ResidualBlock(3, 4, rng=np.random.default_rng(1)),
                         GlobalAveragePool(), Dense(4, 1), Sigmoid()],
                        input_shape=(6, 6, 3))
    target = Sequential([ResidualBlock(3, 4, rng=np.random.default_rng(2)),
                         GlobalAveragePool(), Dense(4, 1), Sigmoid()],
                        input_shape=(6, 6, 3))
    assert not np.allclose(source.forward(x), target.forward(x))
    target.set_parameters(source.parameters())
    np.testing.assert_allclose(source.forward(x), target.forward(x))


def test_gradient_flows_through_skip_path():
    """With zeroed main-path weights the gradient still reaches the input."""
    rng = np.random.default_rng(3)
    block = ResidualBlock(4, 4, rng=rng)
    block.conv1.params["weight"][:] = 0.0
    block.conv2.params["weight"][:] = 0.0
    x = rng.standard_normal((1, 5, 5, 4))
    out = block.forward(x, training=True)
    grad = block.backward(np.ones_like(out))
    assert np.abs(grad).sum() > 0
