"""Tests for the shared dtype/shape coercion helpers in ``repro.nn.dtypes``."""

import numpy as np
import pytest

from repro.nn.dtypes import DEFAULT_FLOAT, align_targets, as_float


class TestAsFloat:
    def test_coerces_lists_to_default_float(self):
        out = as_float([1, 2, 3])
        assert out.dtype == DEFAULT_FLOAT
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_keeps_existing_float_values(self):
        x = np.array([0.5, 1.5], dtype=np.float32)
        out = as_float(x, dtype=np.float32)
        assert out.dtype == np.float32

    def test_rejects_non_float_target_dtype(self):
        with pytest.raises(ValueError, match="float"):
            as_float([1, 2], dtype=np.int64)


class TestAlignTargets:
    def test_reshapes_matching_sizes(self):
        predictions = np.zeros((4, 1))
        targets = np.array([0, 1, 1, 0])
        pred, tgt = align_targets(predictions, targets)
        assert tgt.shape == (4, 1)
        assert tgt.dtype == DEFAULT_FLOAT

    def test_identical_shapes_untouched(self):
        predictions = np.zeros((3, 2))
        targets = np.ones((3, 2))
        _, tgt = align_targets(predictions, targets)
        assert tgt.shape == (3, 2)

    def test_size_mismatch_names_both_shapes(self):
        predictions = np.zeros((4, 2))
        targets = np.array([0, 1, 1])
        with pytest.raises(ValueError) as excinfo:
            align_targets(predictions, targets)
        message = str(excinfo.value)
        assert "(4, 2)" in message
        assert "(3,)" in message

    def test_loss_paths_use_the_helper(self):
        from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError
        predictions = np.array([[0.2], [0.8], [0.6]])
        targets = [0, 1, 1]  # plain list: coerced and reshaped to (3, 1)
        for loss in (BinaryCrossEntropy(), MeanSquaredError()):
            value = loss.forward(predictions, targets)
            assert np.isscalar(value) or np.ndim(value) == 0
            grad = loss.backward(predictions, targets)
            assert grad.shape == predictions.shape

    def test_loss_mismatch_raises(self):
        from repro.nn.losses import MeanSquaredError
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((4, 2)), np.zeros(3))
