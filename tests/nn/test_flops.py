"""Tests for FLOP accounting."""

import numpy as np
import pytest

from repro.nn.flops import count_layer_flops, count_network_flops
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from repro.nn.network import Sequential


def test_dense_layer_flops():
    assert count_layer_flops(Dense(100, 10), (100,)) == 1000


def test_conv_layer_flops_formula():
    layer = Conv2D(3, 8, kernel_size=3, padding="same")
    # out 10x10x8, each output needs 3*3*3 MACs.
    assert count_layer_flops(layer, (10, 10, 3)) == 10 * 10 * 8 * 27


def test_network_flops_is_sum_of_layers():
    rng = np.random.default_rng(0)
    net = Sequential([
        Conv2D(3, 4, 3, rng=rng), ReLU(), MaxPool2D(2),
        Flatten(), Dense(4 * 4 * 4, 1, rng=rng), Sigmoid(),
    ], input_shape=(8, 8, 3))
    total = count_network_flops(net)
    manual = 0
    shape = (8, 8, 3)
    for layer in net.layers:
        manual += layer.flops(shape)
        shape = layer.output_shape(shape)
    assert total == manual
    assert total > 0


def test_network_flops_requires_shape():
    net = Sequential([Dense(4, 1), Sigmoid()])
    with pytest.raises(ValueError):
        count_network_flops(net)
    assert count_network_flops(net, (4,)) > 0


def test_flops_grow_with_resolution_and_channels():
    """The property the whole cost model relies on: bigger inputs cost more."""
    rng = np.random.default_rng(1)

    def flops_for(resolution, channels):
        net = Sequential([
            Conv2D(channels, 8, 3, rng=rng), ReLU(), MaxPool2D(2),
            Flatten(),
            Dense((resolution // 2) ** 2 * 8, 16, rng=rng), ReLU(),
            Dense(16, 1, rng=rng), Sigmoid(),
        ], input_shape=(resolution, resolution, channels))
        return count_network_flops(net)

    assert flops_for(16, 3) > flops_for(8, 3)
    assert flops_for(16, 3) > flops_for(16, 1)
