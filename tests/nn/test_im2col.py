"""Tests for the im2col/col2im utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col


def test_conv_output_size_basic():
    assert conv_output_size(8, 3, 1, 1) == 8
    assert conv_output_size(8, 3, 1, 0) == 6
    assert conv_output_size(8, 2, 2, 0) == 4
    assert conv_output_size(7, 2, 2, 0) == 3


def test_im2col_shape():
    images = np.arange(2 * 5 * 5 * 3, dtype=float).reshape(2, 5, 5, 3)
    cols = im2col(images, 3, 3, stride=1, pad=0)
    assert cols.shape == (2 * 3 * 3, 3 * 3 * 3)


def test_im2col_values_single_window():
    """A kernel covering the whole image reproduces the image itself."""
    image = np.arange(1 * 3 * 3 * 1, dtype=float).reshape(1, 3, 3, 1)
    cols = im2col(image, 3, 3)
    np.testing.assert_allclose(cols.ravel(), image.ravel())


def test_im2col_with_padding_adds_zeros():
    image = np.ones((1, 2, 2, 1))
    cols = im2col(image, 3, 3, stride=1, pad=1)
    # Top-left window has zeros where padding was added.
    first_window = cols[0].reshape(3, 3)
    assert first_window[0, 0] == 0.0
    assert first_window[1, 1] == 1.0


def test_col2im_adjoint_of_im2col():
    """<im2col(x), y> == <x, col2im(y)> — the two operators are adjoint."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 6, 6, 3))
    cols = im2col(x, 3, 3, stride=1, pad=1)
    y = rng.standard_normal(cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, 3, 3, stride=1, pad=1)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(1, 3), size=st.integers(4, 9),
       channels=st.integers(1, 3), kernel=st.integers(1, 3),
       stride=st.integers(1, 2))
def test_im2col_shape_property(batch, size, channels, kernel, stride):
    rng = np.random.default_rng(0)
    images = rng.random((batch, size, size, channels))
    out = conv_output_size(size, kernel, stride, 0)
    cols = im2col(images, kernel, kernel, stride=stride, pad=0)
    assert cols.shape == (batch * out * out, kernel * kernel * channels)


def test_col2im_counts_overlaps():
    """col2im of all-ones counts how many windows cover each pixel."""
    shape = (1, 4, 4, 1)
    cols = np.ones((1 * 2 * 2, 3 * 3 * 1))
    counts = col2im(cols, shape, 3, 3, stride=1, pad=0)
    # The centre pixels are covered by all four 3x3 windows.
    assert counts[0, 1, 1, 0] == 4
    assert counts[0, 0, 0, 0] == 1
