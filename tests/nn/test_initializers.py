"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import constant, glorot_uniform, he_normal, zeros


def test_glorot_uniform_bounds():
    rng = np.random.default_rng(0)
    weights = glorot_uniform((200, 100), fan_in=200, fan_out=100, rng=rng)
    limit = np.sqrt(6.0 / 300.0)
    assert weights.shape == (200, 100)
    assert weights.min() >= -limit and weights.max() <= limit
    # Roughly centered.
    assert abs(weights.mean()) < limit / 10


def test_he_normal_scale():
    rng = np.random.default_rng(1)
    weights = he_normal((500, 100), fan_in=500, rng=rng)
    expected_std = np.sqrt(2.0 / 500.0)
    assert weights.std() == pytest.approx(expected_std, rel=0.1)


def test_zeros_and_constant():
    assert np.all(zeros((3, 4)) == 0.0)
    assert np.all(constant((2, 2), 0.5) == 0.5)


def test_initializers_are_deterministic_given_rng():
    a = glorot_uniform((4, 4), 4, 4, np.random.default_rng(7))
    b = glorot_uniform((4, 4), 4, 4, np.random.default_rng(7))
    np.testing.assert_allclose(a, b)


def test_initializers_are_float64():
    assert glorot_uniform((2, 2), 2, 2, np.random.default_rng(0)).dtype == np.float64
    assert he_normal((2, 2), 2, np.random.default_rng(0)).dtype == np.float64
