"""Layer tests: shapes, forward values and numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
)


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued ``f`` with respect to ``x``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, tol=1e-5):
    """Compare the layer's backward pass against a numerical gradient."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    upstream = rng.standard_normal(out.shape)

    def loss():
        return float((layer.forward(x, training=False) * upstream).sum())

    analytic = layer.backward(upstream)
    # Re-run forward in training mode so caches match the analytic pass.
    layer.forward(x, training=True)
    numeric = numerical_gradient(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=tol, rtol=1e-3)


class TestConv2D:
    def test_output_shape_same_padding(self):
        layer = Conv2D(3, 8, kernel_size=3, padding="same")
        x = np.random.default_rng(0).random((2, 10, 10, 3))
        assert layer.forward(x).shape == (2, 10, 10, 8)
        assert layer.output_shape((10, 10, 3)) == (10, 10, 8)

    def test_output_shape_valid_padding(self):
        layer = Conv2D(1, 4, kernel_size=3, padding="valid")
        assert layer.output_shape((8, 8, 1)) == (6, 6, 4)

    def test_rejects_wrong_channels(self):
        layer = Conv2D(3, 4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 6, 6, 1)))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4)

    def test_flops_scale_with_resolution(self):
        layer = Conv2D(3, 8, kernel_size=3)
        assert layer.flops((20, 20, 3)) == 4 * layer.flops((10, 10, 3))

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Conv2D(2, 3, kernel_size=3, padding="same", rng=rng)
        x = rng.standard_normal((2, 5, 5, 2))
        upstream = rng.standard_normal((2, 5, 5, 3))
        layer.forward(x, training=True)
        layer.backward(upstream)
        analytic = layer.grads["weight"].copy()

        def loss():
            return float((layer.forward(x) * upstream).sum())

        numeric = numerical_gradient(loss, layer.params["weight"])
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, 3, kernel_size=3, padding="same", rng=rng)
        check_input_gradient(layer, rng.standard_normal((1, 5, 5, 2)))


class TestMaxPool2D:
    def test_output_shape(self):
        layer = MaxPool2D(2)
        x = np.random.default_rng(0).random((2, 8, 8, 3))
        assert layer.forward(x).shape == (2, 4, 4, 3)

    def test_picks_maximum(self):
        x = np.zeros((1, 2, 2, 1))
        x[0, 1, 0, 0] = 5.0
        layer = MaxPool2D(2)
        assert layer.forward(x)[0, 0, 0, 0] == 5.0

    def test_backward_routes_to_argmax(self):
        x = np.zeros((1, 2, 2, 1))
        x[0, 1, 1, 0] = 3.0
        layer = MaxPool2D(2)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        assert grad[0, 1, 1, 0] == 1.0
        assert grad.sum() == 1.0

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        # Distinct values avoid argmax ties that break numerical checks.
        x = rng.permutation(np.arange(1 * 4 * 4 * 2, dtype=float)).reshape(1, 4, 4, 2)
        check_input_gradient(MaxPool2D(2), x)

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            MaxPool2D(4).forward(np.zeros((1, 2, 2, 1)))


class TestDense:
    def test_forward_shape_and_values(self):
        layer = Dense(3, 2)
        layer.params["weight"] = np.eye(3, 2)
        layer.params["bias"] = np.array([1.0, -1.0])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[2.0, 1.0]])

    def test_rejects_wrong_features(self):
        with pytest.raises(ValueError):
            Dense(3, 2).forward(np.zeros((1, 4)))

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(4)
        layer = Dense(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        check_input_gradient(layer, x)

    def test_flops(self):
        assert Dense(10, 5).flops((10,)) == 50


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(layer.backward(np.array([5.0, 5.0])), [0.0, 5.0])

    def test_sigmoid_range_and_symmetry(self):
        layer = Sigmoid()
        out = layer.forward(np.array([-50.0, 0.0, 50.0]))
        assert np.all((out >= 0) & (out <= 1))
        assert np.all(np.isfinite(out))
        assert out[1] == pytest.approx(0.5)
        moderate = layer.forward(np.array([-4.0, 4.0]))
        assert 0 < moderate[0] < 0.5 < moderate[1] < 1

    def test_sigmoid_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        check_input_gradient(Sigmoid(), rng.standard_normal((4, 3)))

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_gradient_matches_numerical(self):
        rng = np.random.default_rng(6)
        check_input_gradient(Softmax(), rng.standard_normal((3, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(3))


class TestFlattenAndPooling:
    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.random.default_rng(0).random((2, 3, 3, 2))
        out = layer.forward(x)
        assert out.shape == (2, 18)
        np.testing.assert_allclose(layer.backward(out), x)

    def test_global_average_pool(self):
        layer = GlobalAveragePool()
        x = np.ones((2, 4, 4, 3)) * 2.0
        out = layer.forward(x)
        np.testing.assert_allclose(out, np.full((2, 3), 2.0))

    def test_global_average_pool_gradient(self):
        rng = np.random.default_rng(7)
        check_input_gradient(GlobalAveragePool(), rng.standard_normal((2, 3, 3, 2)))


class TestDropout:
    def test_identity_at_inference(self):
        x = np.random.default_rng(0).random((4, 4))
        np.testing.assert_allclose(Dropout(0.5).forward(x, training=False), x)

    def test_zeroes_some_values_in_training(self):
        rng = np.random.default_rng(0)
        layer = Dropout(0.5, rng=rng)
        out = layer.forward(np.ones((100, 100)), training=True)
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        rng = np.random.default_rng(8)
        layer = BatchNorm(3)
        x = rng.standard_normal((64, 3)) * 5 + 2
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_inference(self):
        layer = BatchNorm(2, momentum=0.0)
        x = np.array([[2.0, 4.0], [4.0, 8.0]])
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert out.shape == x.shape

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(9)
        layer = BatchNorm(3)
        x = rng.standard_normal((6, 3))
        out = layer.forward(x, training=True)
        upstream = rng.standard_normal(out.shape)
        analytic = layer.backward(upstream)

        def loss():
            return float((layer.forward(x, training=True) * upstream).sum())

        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-3)
