"""Tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError


class TestBinaryCrossEntropy:
    def test_perfect_predictions_have_low_loss(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.999, 0.001]), np.array([1, 0]))
        assert value < 0.01

    def test_wrong_predictions_have_high_loss(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.01, 0.99]), np.array([1, 0]))
        assert value > 2.0

    def test_handles_extreme_probabilities_without_nan(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.0, 1.0]), np.array([1, 0]))
        assert np.isfinite(value)

    def test_column_vector_targets_are_aligned(self):
        loss = BinaryCrossEntropy()
        pred = np.array([[0.8], [0.2]])
        assert loss.forward(pred, np.array([1, 0])) == pytest.approx(
            loss.forward(pred, np.array([[1], [0]])))

    def test_gradient_sign(self):
        """Gradient is negative when the prediction should increase."""
        loss = BinaryCrossEntropy()
        grad = loss.backward(np.array([0.3]), np.array([1.0]))
        assert grad[0] < 0
        grad = loss.backward(np.array([0.7]), np.array([0.0]))
        assert grad[0] > 0

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        loss = BinaryCrossEntropy()
        predictions = rng.uniform(0.1, 0.9, size=(6, 1))
        targets = rng.integers(0, 2, size=(6, 1)).astype(float)
        analytic = loss.backward(predictions, targets)
        eps = 1e-6
        numeric = np.zeros_like(predictions)
        for i in range(predictions.size):
            p = predictions.copy()
            p.ravel()[i] += eps
            plus = loss.forward(p, targets)
            p.ravel()[i] -= 2 * eps
            minus = loss.forward(p, targets)
            numeric.ravel()[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestMeanSquaredError:
    def test_zero_for_exact_match(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([0.0, 2.0]), np.array([1.0, 0.0])) == pytest.approx(2.5)

    def test_gradient(self):
        loss = MeanSquaredError()
        grad = loss.backward(np.array([2.0]), np.array([1.0]))
        np.testing.assert_allclose(grad, [2.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0.01, 0.99), min_size=1, max_size=20),
       st.data())
def test_bce_is_nonnegative_property(probabilities, data):
    labels = data.draw(st.lists(st.integers(0, 1), min_size=len(probabilities),
                                max_size=len(probabilities)))
    loss = BinaryCrossEntropy()
    assert loss.forward(np.array(probabilities), np.array(labels)) >= 0.0
