"""Tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from repro.nn.network import Sequential


def make_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential([
        Conv2D(3, 4, 3, rng=rng), ReLU(), MaxPool2D(2),
        Flatten(), Dense(4 * 4 * 4, 8, rng=rng), ReLU(),
        Dense(8, 1, rng=rng), Sigmoid(),
    ], input_shape=(8, 8, 3))


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_shape(self):
        net = make_net()
        out = net.forward(np.random.default_rng(0).random((5, 8, 8, 3)))
        assert out.shape == (5, 1)

    def test_output_shape_inference(self):
        assert make_net().output_shape() == (1,)

    def test_shape_trace_lengths(self):
        net = make_net()
        trace = net.shape_trace()
        assert len(trace) == len(net.layers)
        assert trace[-1] == (1,)

    def test_predict_matches_forward(self):
        net = make_net()
        x = np.random.default_rng(1).random((7, 8, 8, 3))
        np.testing.assert_allclose(net.predict(x, batch_size=3), net.forward(x))

    def test_predict_proba_squeezes_single_output(self):
        net = make_net()
        x = np.random.default_rng(2).random((4, 8, 8, 3))
        probs = net.predict_proba(x)
        assert probs.shape == (4,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_num_parameters_positive(self):
        assert make_net().num_parameters() > 0

    def test_parameters_round_trip(self):
        net_a = make_net(np.random.default_rng(3))
        net_b = make_net(np.random.default_rng(4))
        x = np.random.default_rng(5).random((3, 8, 8, 3))
        assert not np.allclose(net_a.forward(x), net_b.forward(x))
        net_b.set_parameters(net_a.parameters())
        np.testing.assert_allclose(net_a.forward(x), net_b.forward(x))

    def test_set_parameters_rejects_missing_key(self):
        net = make_net()
        params = net.parameters()
        params.pop(next(iter(params)))
        with pytest.raises(KeyError):
            net.set_parameters(params)

    def test_set_parameters_rejects_bad_shape(self):
        net = make_net()
        params = net.parameters()
        key = next(iter(params))
        params[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_parameters(params)

    def test_summary_mentions_every_layer(self):
        summary = make_net().summary()
        assert "Conv2D" in summary and "Dense" in summary

    def test_backward_returns_input_shaped_gradient(self):
        net = make_net()
        x = np.random.default_rng(6).random((2, 8, 8, 3))
        out = net.forward(x, training=True)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape
