"""Tests for the gradient-descent optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.optimizers import SGD, Adam, Momentum


def make_layer_with_grad(grad_value=1.0):
    layer = Dense(2, 2)
    layer.params["weight"] = np.zeros((2, 2))
    layer.params["bias"] = np.zeros(2)
    layer.grads["weight"] = np.full((2, 2), grad_value)
    layer.grads["bias"] = np.full(2, grad_value)
    return layer


class TestSGD:
    def test_single_step(self):
        layer = make_layer_with_grad(2.0)
        SGD(learning_rate=0.5).step([layer])
        np.testing.assert_allclose(layer.params["weight"], -1.0)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_skips_layers_without_grads(self):
        layer = Dense(2, 2)
        before = layer.params["weight"].copy()
        SGD(0.1).step([layer])
        np.testing.assert_allclose(layer.params["weight"], before)


class TestMomentum:
    def test_accumulates_velocity(self):
        layer = make_layer_with_grad(1.0)
        optimizer = Momentum(learning_rate=0.1, momentum=0.9)
        optimizer.step([layer])
        first = layer.params["weight"].copy()
        optimizer.step([layer])
        second_step = layer.params["weight"] - first
        # Second step is larger in magnitude because velocity accumulates.
        assert np.all(np.abs(second_step) > 0.1)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_step_magnitude_bounded_by_learning_rate(self):
        layer = make_layer_with_grad(100.0)
        Adam(learning_rate=0.01).step([layer])
        assert np.all(np.abs(layer.params["weight"]) <= 0.011)

    def test_converges_on_quadratic(self):
        """Adam drives a simple quadratic objective toward its minimum."""
        layer = Dense(1, 1)
        layer.params["weight"] = np.array([[5.0]])
        layer.params["bias"] = np.array([0.0])
        optimizer = Adam(learning_rate=0.2)
        for _ in range(200):
            layer.grads["weight"] = 2 * layer.params["weight"]
            layer.grads["bias"] = np.zeros(1)
            optimizer.step([layer])
        assert abs(layer.params["weight"][0, 0]) < 0.05

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
