"""Tests for weight serialization."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.nn.serialize import load_weights, save_weights


def make_net(seed):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(6, 4, rng=rng), ReLU(), Dense(4, 1, rng=rng),
                       Sigmoid()], input_shape=(6,))


def test_round_trip_preserves_outputs(tmp_path):
    net_a = make_net(0)
    net_b = make_net(1)
    x = np.random.default_rng(2).random((5, 6))
    path = save_weights(net_a, tmp_path / "weights")
    assert path.suffix == ".npz"
    load_weights(net_b, path)
    np.testing.assert_allclose(net_a.forward(x), net_b.forward(x))


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_weights(make_net(0), tmp_path / "nope.npz")


def test_save_creates_parent_directories(tmp_path):
    path = save_weights(make_net(0), tmp_path / "deep" / "dir" / "w.npz")
    assert path.exists()


def test_load_incompatible_architecture_raises(tmp_path):
    path = save_weights(make_net(0), tmp_path / "w.npz")
    other = Sequential([Dense(3, 1), Sigmoid()], input_shape=(3,))
    with pytest.raises((KeyError, ValueError)):
        load_weights(other, path)
