"""Tests for the training loop."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Sigmoid
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.train import EarlyStopping, evaluate_accuracy, fit, iterate_minibatches


def linearly_separable(n, rng):
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


def make_logistic(rng):
    return Sequential([Dense(4, 1, rng=rng), Sigmoid()], input_shape=(4,))


class TestIterateMinibatches:
    def test_covers_all_examples(self):
        rng = np.random.default_rng(0)
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, batch_size=3, rng=rng):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        x = np.zeros((10, 1))
        y = np.zeros(10)
        sizes = [xb.shape[0] for xb, _ in iterate_minibatches(x, y, 4, rng)]
        assert sizes == [4, 4, 2]


class TestFit:
    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(1)
        x, y = linearly_separable(200, rng)
        net = make_logistic(rng)
        history = fit(net, x, y, epochs=15, batch_size=32,
                      optimizer=Adam(learning_rate=0.1), rng=rng)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.train_accuracy[-1] > 0.85

    def test_validation_metrics_recorded(self):
        rng = np.random.default_rng(2)
        x, y = linearly_separable(100, rng)
        xv, yv = linearly_separable(50, rng)
        net = make_logistic(rng)
        history = fit(net, x, y, x_val=xv, y_val=yv, epochs=3, rng=rng)
        assert len(history.val_loss) == 3
        assert len(history.val_accuracy) == 3

    def test_empty_training_set_raises(self):
        net = make_logistic(np.random.default_rng(0))
        with pytest.raises(ValueError):
            fit(net, np.zeros((0, 4)), np.zeros(0))

    def test_mismatched_lengths_raise(self):
        net = make_logistic(np.random.default_rng(0))
        with pytest.raises(ValueError):
            fit(net, np.zeros((4, 4)), np.zeros(3))

    def test_early_stopping_requires_validation(self):
        net = make_logistic(np.random.default_rng(0))
        with pytest.raises(ValueError):
            fit(net, np.zeros((4, 4)), np.zeros(4), early_stopping=EarlyStopping())

    def test_early_stopping_can_cut_training_short(self):
        rng = np.random.default_rng(3)
        x, y = linearly_separable(60, rng)
        net = make_logistic(rng)
        history = fit(net, x, y, x_val=x, y_val=y, epochs=50,
                      early_stopping=EarlyStopping(patience=1, min_delta=10.0),
                      rng=rng)
        assert history.epochs_run < 50


class TestEvaluateAccuracy:
    def test_empty_set_is_nan(self):
        net = make_logistic(np.random.default_rng(0))
        assert np.isnan(evaluate_accuracy(net, np.zeros((0, 4)), np.zeros(0)))

    def test_perfect_classifier(self):
        net = Sequential([Dense(1, 1), Sigmoid()], input_shape=(1,))
        net.layers[0].params["weight"] = np.array([[10.0]])
        net.layers[0].params["bias"] = np.array([0.0])
        x = np.array([[-1.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        assert evaluate_accuracy(net, x, y) == 1.0


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(1.0)
        assert stopper.should_stop(1.0)

    def test_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(0.5)
        assert not stopper.should_stop(0.5)
        assert stopper.should_stop(0.5)
