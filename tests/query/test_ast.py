"""Tests for the tokenizer and AST node types."""

import pytest

from repro.query.ast import (Aggregate, AndExpr, NotExpr, OrderItem, OrExpr,
                             PredicateExpr, SqlParseError,
                             conjunctive_predicates, iter_predicates,
                             select_label, tokenize)
from repro.query.predicates import ContainsObject, MetadataPredicate


class TestTokenizer:
    def test_basic_tokens_and_offsets(self):
        tokens = tokenize("SELECT * FROM images")
        assert [(t.type, t.text) for t in tokens] == [
            ("IDENT", "SELECT"), ("STAR", "*"), ("IDENT", "FROM"),
            ("IDENT", "images")]
        assert [t.offset for t in tokens] == [0, 7, 9, 14]

    def test_operators(self):
        tokens = tokenize("a<=1 b>=2 c!=3 d<4 e>5 f=6")
        ops = [t.text for t in tokens if t.type == "OP"]
        assert ops == ["<=", ">=", "!=", "<", ">", "="]

    def test_number_values(self):
        tokens = tokenize("1 2.5 -3 1e3 .5")
        assert [t.value for t in tokens] == [1, 2.5, -3, 1000.0, 0.5]
        assert isinstance(tokens[0].value, int)
        assert isinstance(tokens[3].value, float)

    def test_string_value_unescapes_doubled_quotes(self):
        token = tokenize("'rock ''n'' roll'")[0]
        assert token.type == "STRING"
        assert token.value == "rock 'n' roll"

    def test_double_quoted_string(self):
        token = tokenize('"say ""hi"" twice"')[0]
        assert token.value == 'say "hi" twice'

    def test_keywords_inside_strings_are_one_token(self):
        tokens = tokenize("note = 'a AND b LIMIT 5'")
        assert [t.type for t in tokens] == ["IDENT", "OP", "STRING"]

    def test_whitespace_including_newlines_dropped(self):
        tokens = tokenize("SELECT *\n\tFROM   images")
        assert len(tokens) == 4

    def test_unterminated_literal_reports_offset(self):
        with pytest.raises(SqlParseError) as excinfo:
            tokenize("note = 'oops")
        assert "unterminated" in str(excinfo.value)
        assert excinfo.value.offset == 7

    def test_unexpected_character_reports_offset(self):
        with pytest.raises(SqlParseError) as excinfo:
            tokenize("a = 1 @")
        assert excinfo.value.offset == 6
        assert excinfo.value.token == "@"

    def test_dash_token_between_identifiers(self):
        tokens = tokenize("traffic-light")
        assert [t.type for t in tokens] == ["IDENT", "DASH", "IDENT"]


class TestBooleanNodes:
    def _leaf(self, name="a", value=1):
        return PredicateExpr(MetadataPredicate(name, "==", value))

    def test_and_or_need_two_children(self):
        with pytest.raises(ValueError):
            AndExpr((self._leaf(),))
        with pytest.raises(ValueError):
            OrExpr((self._leaf(),))

    def test_iter_predicates_left_to_right(self):
        tree = OrExpr((AndExpr((self._leaf("a"), self._leaf("b"))),
                       NotExpr(PredicateExpr(ContainsObject("dog")))))
        assert [getattr(p, "column", getattr(p, "category", None))
                for p in iter_predicates(tree)] == ["a", "b", "dog"]

    def test_conjunctive_predicates_flat_and(self):
        tree = AndExpr((self._leaf("a"), self._leaf("b")))
        assert [p.column for p in conjunctive_predicates(tree)] == ["a", "b"]

    def test_conjunctive_predicates_nested_and(self):
        tree = AndExpr((AndExpr((self._leaf("a"), self._leaf("b"))),
                        self._leaf("c")))
        assert [p.column for p in conjunctive_predicates(tree)] == [
            "a", "b", "c"]

    def test_or_and_not_are_not_conjunctive(self):
        assert conjunctive_predicates(
            OrExpr((self._leaf(), self._leaf("b")))) is None
        assert conjunctive_predicates(NotExpr(self._leaf())) is None
        assert conjunctive_predicates(
            AndExpr((self._leaf(), NotExpr(self._leaf("b"))))) is None

    def test_none_is_the_empty_conjunction(self):
        assert conjunctive_predicates(None) == []


class TestAggregateSpec:
    def test_labels(self):
        assert Aggregate("count", None).label == "count(*)"
        assert Aggregate("avg", "speed").label == "avg(speed)"
        assert select_label(Aggregate("sum", "x")) == "sum(x)"
        assert select_label("plain") == "plain"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Aggregate("median", "x")

    def test_star_only_for_count(self):
        with pytest.raises(ValueError):
            Aggregate("sum", None)

    def test_order_item_label(self):
        assert OrderItem("x", False).label == "x"
        assert OrderItem(Aggregate("count", None)).label == "count(*)"
