"""Tests for query predicates."""

import numpy as np
import pytest

from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.relation import Relation


@pytest.fixture
def relation():
    return Relation({
        "location": np.array(["detroit", "seattle", "austin"]),
        "timestamp": np.array([10.0, 20.0, 30.0]),
    })


class TestMetadataPredicate:
    def test_equality(self, relation):
        mask = MetadataPredicate("location", "==", "detroit").evaluate(relation)
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_comparison(self, relation):
        mask = MetadataPredicate("timestamp", ">=", 20.0).evaluate(relation)
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_in_operator(self, relation):
        predicate = MetadataPredicate("location", "in", ("detroit", "austin"))
        np.testing.assert_array_equal(predicate.evaluate(relation),
                                      [True, False, True])

    def test_not_equal(self, relation):
        mask = MetadataPredicate("location", "!=", "seattle").evaluate(relation)
        assert mask.sum() == 2

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            MetadataPredicate("location", "~=", "x")

    def test_unknown_column(self, relation):
        with pytest.raises(KeyError):
            MetadataPredicate("speed", "==", 1).evaluate(relation)

    def test_str(self):
        assert "location" in str(MetadataPredicate("location", "==", "detroit"))


class TestContainsObject:
    def test_column_name(self):
        assert ContainsObject("komondor").column_name == "contains_komondor"

    def test_empty_category_rejected(self):
        with pytest.raises(ValueError):
            ContainsObject("")

    def test_str(self):
        assert str(ContainsObject("fence")) == "contains_object(fence)"
