"""Tests for the query processor (uses the session-scoped tiny optimizer)."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query, QueryProcessor
from tests.conftest import TINY_SIZE


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus((get_category("komondor"), get_category("scorpion")),
                           n_images=24, image_size=TINY_SIZE,
                           rng=np.random.default_rng(3), positive_rate=0.8)


@pytest.fixture(scope="module")
def processor(corpus, tiny_optimizer, camera_profiler):
    return QueryProcessor(corpus, {"komondor": tiny_optimizer}, camera_profiler)


class TestQueryValidation:
    def test_bare_query_is_a_scan(self):
        query = Query()
        assert query.where is None
        assert query.metadata_predicates == ()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Query(limit=-1)

    def test_predicates_synthesize_conjunctive_where(self):
        from repro.query.ast import conjunctive_predicates

        query = Query(
            metadata_predicates=(MetadataPredicate("location", "==", "x"),),
            content_predicates=(ContainsObject("dog"),))
        assert conjunctive_predicates(query.where) == [
            MetadataPredicate("location", "==", "x"), ContainsObject("dog")]

    def test_where_tree_derives_flat_predicates(self):
        from repro.query.ast import OrExpr, PredicateExpr

        tree = OrExpr((PredicateExpr(MetadataPredicate("a", "==", 1)),
                       PredicateExpr(ContainsObject("dog"))))
        query = Query(where=tree)
        assert query.metadata_predicates == (MetadataPredicate("a", "==", 1),)
        assert query.content_predicates == (ContainsObject("dog"),)


class TestBareScanExecution:
    def test_scan_returns_every_row(self, processor, corpus):
        result = processor.execute(Query())
        assert len(result) == len(corpus)
        assert result.cascades_used == {}

    def test_scan_with_limit(self, processor):
        result = processor.execute(Query(limit=5))
        assert len(result) == 5


class TestMetadataOnlyQueries:
    def test_metadata_filter(self, processor, corpus):
        query = Query(metadata_predicates=(
            MetadataPredicate("location", "==", "detroit"),))
        result = processor.execute(query)
        expected = int((corpus.metadata["location"] == "detroit").sum())
        assert len(result) == expected
        assert result.cascades_used == {}

    def test_empty_result(self, processor):
        query = Query(metadata_predicates=(
            MetadataPredicate("location", "==", "nowhere"),))
        assert len(processor.execute(query)) == 0


class TestContentQueries:
    def test_contains_object_populates_virtual_column(self, processor):
        query = Query(content_predicates=(ContainsObject("komondor"),),
                      constraints=UserConstraints(max_accuracy_loss=0.1))
        result = processor.execute(query)
        assert "contains_komondor" in result.relation
        assert "komondor" in result.cascades_used
        assert result.images_classified["komondor"] > 0

    def test_unknown_category_raises(self, processor):
        query = Query(content_predicates=(ContainsObject("zebra"),))
        with pytest.raises(KeyError):
            processor.execute(query)

    def test_metadata_predicate_reduces_classified_images(self, corpus,
                                                          tiny_optimizer,
                                                          camera_profiler):
        processor = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                                   camera_profiler)
        narrow = Query(
            metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
            content_predicates=(ContainsObject("komondor"),))
        result = processor.execute(narrow)
        n_detroit = int((corpus.metadata["location"] == "detroit").sum())
        assert result.images_classified["komondor"] == n_detroit

    def test_materialized_column_reused_across_queries(self, corpus,
                                                       tiny_optimizer,
                                                       camera_profiler):
        processor = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                                   camera_profiler)
        query = Query(content_predicates=(ContainsObject("komondor"),))
        first = processor.execute(query)
        second = processor.execute(query)
        assert first.images_classified["komondor"] == len(corpus)
        assert second.images_classified["komondor"] == 0
        np.testing.assert_array_equal(first.selected_indices,
                                      second.selected_indices)

    def test_query_finds_mostly_true_positives(self, corpus, tiny_optimizer,
                                               camera_profiler):
        """The selected rows should be enriched in images that truly contain
        the object, compared to the corpus base rate."""
        processor = QueryProcessor(corpus, {"komondor": tiny_optimizer},
                                   camera_profiler)
        result = processor.execute(
            Query(content_predicates=(ContainsObject("komondor"),)))
        truth = corpus.content["komondor"]
        base_rate = truth.mean()
        if len(result) > 0:
            selected_rate = truth[result.selected_indices].mean()
            assert selected_rate >= base_rate


class TestProcessorConstruction:
    def test_empty_corpus_rejected(self, tiny_optimizer, camera_profiler):
        from repro.data.corpus import ImageCorpus

        with pytest.raises(ValueError):
            QueryProcessor(ImageCorpus(images=np.zeros((0, 8, 8, 3)), metadata={}),
                           {}, camera_profiler)

    def test_relation_exposes_metadata(self, processor):
        assert "location" in processor.relation
        assert "image_id" in processor.relation
