"""Tests for the in-memory relation."""

import numpy as np
import pytest

from repro.query.relation import Relation


@pytest.fixture
def relation():
    return Relation({
        "location": np.array(["detroit", "seattle", "detroit", "austin"]),
        "camera_id": np.array([1, 2, 1, 3]),
    })


def test_length_and_columns(relation):
    assert len(relation) == 4
    assert relation.column_names() == ["camera_id", "location"]
    assert "location" in relation


def test_requires_columns():
    with pytest.raises(ValueError):
        Relation({})


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Relation({"a": np.zeros(3), "b": np.zeros(4)})


def test_column_access(relation):
    np.testing.assert_array_equal(relation["camera_id"], [1, 2, 1, 3])
    with pytest.raises(KeyError):
        relation.column("missing")


def test_with_column(relation):
    extended = relation.with_column("flag", np.array([1, 0, 1, 0]))
    assert "flag" in extended
    assert "flag" not in relation  # original unchanged


def test_with_column_length_check(relation):
    with pytest.raises(ValueError):
        relation.with_column("bad", np.zeros(2))


def test_filter(relation):
    mask = relation["location"] == "detroit"
    filtered = relation.filter(mask)
    assert len(filtered) == 2
    assert set(filtered["camera_id"]) == {1}


def test_filter_length_check(relation):
    with pytest.raises(ValueError):
        relation.filter(np.array([True, False]))


def test_project(relation):
    projected = relation.project(["location"])
    assert projected.column_names() == ["location"]
    with pytest.raises(ValueError):
        relation.project([])


def test_to_dict_is_copy(relation):
    columns = relation.to_dict()
    columns["new"] = np.zeros(4)
    assert "new" not in relation
