"""Tests for the SQL-ish query parser."""

import pytest

from repro.core.selector import UserConstraints
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.sql import SqlParseError, parse_query


class TestBasicParsing:
    def test_paper_example(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' "
            "AND contains_object(bicycle)")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "==", "detroit"),)
        assert query.content_predicates == (ContainsObject("bicycle"),)

    def test_contains_object_only(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(komondor)")
        assert query.metadata_predicates == ()
        assert query.content_predicates == (ContainsObject("komondor"),)

    def test_case_insensitive_keywords(self):
        query = parse_query("select * from images where Contains_Object(acorn)")
        assert query.content_predicates == (ContainsObject("acorn"),)

    def test_trailing_semicolon(self):
        query = parse_query("SELECT * FROM images WHERE camera_id = 3;")
        assert query.metadata_predicates[0].value == 3

    def test_quoted_category(self):
        query = parse_query("SELECT * FROM images WHERE contains_object('fence')")
        assert query.content_predicates == (ContainsObject("fence"),)


class TestLiteralsAndOperators:
    @pytest.mark.parametrize("sql_op,expected", [
        ("=", "=="), ("!=", "!="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">="),
    ])
    def test_operators(self, sql_op, expected):
        query = parse_query(f"SELECT * FROM images WHERE timestamp {sql_op} 100")
        assert query.metadata_predicates[0].operator == expected

    def test_numeric_literals(self):
        query = parse_query("SELECT * FROM images WHERE timestamp >= 12.5")
        assert query.metadata_predicates[0].value == pytest.approx(12.5)

    def test_string_literals_double_quotes(self):
        query = parse_query('SELECT * FROM images WHERE location = "austin"')
        assert query.metadata_predicates[0].value == "austin"

    def test_unquoted_string_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location = detroit")


class TestConjunctions:
    def test_multiple_predicates(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' AND timestamp < 500 "
            "AND contains_object(wallet) AND contains_object(fence)")
        assert len(query.metadata_predicates) == 2
        assert len(query.content_predicates) == 2

    def test_and_is_case_insensitive(self):
        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 and contains_object(coho)")
        assert len(query.metadata_predicates) == 1
        assert len(query.content_predicates) == 1


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(SqlParseError):
            parse_query("   ")

    def test_missing_where_predicates(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images")

    def test_unsupported_projection(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT id FROM images WHERE camera_id = 1")

    def test_unsupported_predicate_shape(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location LIKE 'det%'")

    def test_or_not_supported(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE camera_id = 1 OR camera_id = 2")


class TestConstraints:
    def test_constraints_attached(self):
        constraints = UserConstraints(max_accuracy_loss=0.05)
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)",
                            constraints=constraints)
        assert query.constraints is constraints

    def test_default_constraints(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)")
        assert query.constraints == UserConstraints()
