"""Tests for the SQL-ish query parser."""

import pytest

from repro.core.selector import UserConstraints
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.sql import SqlParseError, parse_query


class TestBasicParsing:
    def test_paper_example(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' "
            "AND contains_object(bicycle)")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "==", "detroit"),)
        assert query.content_predicates == (ContainsObject("bicycle"),)

    def test_contains_object_only(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(komondor)")
        assert query.metadata_predicates == ()
        assert query.content_predicates == (ContainsObject("komondor"),)

    def test_case_insensitive_keywords(self):
        query = parse_query("select * from images where Contains_Object(acorn)")
        assert query.content_predicates == (ContainsObject("acorn"),)

    def test_trailing_semicolon(self):
        query = parse_query("SELECT * FROM images WHERE camera_id = 3;")
        assert query.metadata_predicates[0].value == 3

    def test_quoted_category(self):
        query = parse_query("SELECT * FROM images WHERE contains_object('fence')")
        assert query.content_predicates == (ContainsObject("fence"),)

    def test_hyphenated_category(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object(traffic-light)")
        assert query.content_predicates == (ContainsObject("traffic-light"),)

    def test_category_with_surrounding_spaces(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object( fence )")
        assert query.content_predicates == (ContainsObject("fence"),)

    def test_category_with_internal_whitespace_rejected(self):
        # 'traffic light' is a typo, not a longer category: the old regex
        # rejected it and the tokenizing parser must not silently join it.
        with pytest.raises(SqlParseError):
            parse_query(
                "SELECT * FROM images WHERE contains_object(traffic light)")

    def test_empty_category_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE contains_object()")


class TestLiteralsAndOperators:
    @pytest.mark.parametrize("sql_op,expected", [
        ("=", "=="), ("!=", "!="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">="),
    ])
    def test_operators(self, sql_op, expected):
        query = parse_query(f"SELECT * FROM images WHERE timestamp {sql_op} 100")
        assert query.metadata_predicates[0].operator == expected

    def test_numeric_literals(self):
        query = parse_query("SELECT * FROM images WHERE timestamp >= 12.5")
        assert query.metadata_predicates[0].value == pytest.approx(12.5)

    def test_string_literals_double_quotes(self):
        query = parse_query('SELECT * FROM images WHERE location = "austin"')
        assert query.metadata_predicates[0].value == "austin"

    def test_unquoted_string_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location = detroit")

    def test_doubled_quote_escape_collapsed(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'rock ''n'' roll'")
        assert query.metadata_predicates[0].value == "rock 'n' roll"

    def test_doubled_quote_escape_in_double_quotes(self):
        query = parse_query(
            'SELECT * FROM images WHERE location = "say ""hi"" twice"')
        assert query.metadata_predicates[0].value == 'say "hi" twice'

    def test_single_quote_inside_double_quotes_untouched(self):
        query = parse_query('SELECT * FROM images WHERE location = "it\'s"')
        assert query.metadata_predicates[0].value == "it's"

    def test_literal_that_is_one_escaped_quote(self):
        query = parse_query("SELECT * FROM images WHERE location = ''''")
        assert query.metadata_predicates[0].value == "'"

    def test_escaped_quote_does_not_terminate_literal(self):
        # The doubled quote must not close the literal: the AND inside the
        # string stays part of it, the trailing predicate still parses.
        query = parse_query("SELECT * FROM images "
                            "WHERE location = 'rock ''n'' roll and blues' "
                            "AND camera_id = 3")
        assert query.metadata_predicates[0].value == "rock 'n' roll and blues"
        assert query.metadata_predicates[1].value == 3

    def test_doubled_quote_escape_in_in_list(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('it''s', 'plain')")
        assert query.metadata_predicates[0].value == ("it's", "plain")


class TestConjunctions:
    def test_multiple_predicates(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' AND timestamp < 500 "
            "AND contains_object(wallet) AND contains_object(fence)")
        assert len(query.metadata_predicates) == 2
        assert len(query.content_predicates) == 2

    def test_and_is_case_insensitive(self):
        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 and contains_object(coho)")
        assert len(query.metadata_predicates) == 1
        assert len(query.content_predicates) == 1

    def test_and_inside_string_literal_is_not_a_conjunction(self):
        query = parse_query(
            "SELECT * FROM images WHERE genre = 'rock and roll' "
            "AND contains_object(coho)")
        assert query.metadata_predicates == (
            MetadataPredicate("genre", "==", "rock and roll"),)
        assert query.content_predicates == (ContainsObject("coho"),)

    def test_and_inside_in_list_literal(self):
        query = parse_query(
            "SELECT * FROM images WHERE genre IN ('rock and roll', 'jazz')")
        assert query.metadata_predicates[0].value == ("rock and roll", "jazz")


class TestLimit:
    def test_limit_parsed(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object(komondor) LIMIT 5")
        assert query.limit == 5

    def test_limit_with_trailing_semicolon(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object(komondor) LIMIT 5;")
        assert query.limit == 5

    def test_no_limit_defaults_to_none(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(dog)")
        assert query.limit is None

    def test_limit_zero_allowed(self):
        query = parse_query("SELECT * FROM images WHERE camera_id = 1 LIMIT 0")
        assert query.limit == 0

    def test_limit_keyword_is_case_insensitive(self):
        query = parse_query("select * from images where camera_id = 1 limit 12")
        assert query.limit == 12

    @pytest.mark.parametrize("bad", ["-1", "abc", "2.5", "1e3"])
    def test_malformed_limit_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse_query(f"SELECT * FROM images WHERE camera_id = 1 LIMIT {bad}")

    def test_limit_without_value_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE camera_id = 1 LIMIT")

    def test_limit_inside_string_literal_is_not_a_limit(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = 'speed limit 55'")
        assert query.limit is None
        assert query.metadata_predicates[0].value == "speed limit 55"

    def test_limit_after_string_literal_containing_limit(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = 'speed limit 55' LIMIT 3")
        assert query.limit == 3
        assert query.metadata_predicates[0].value == "speed limit 55"


class TestInPredicate:
    def test_string_membership(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('detroit', 'austin')")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "in", ("detroit", "austin")),)

    def test_numeric_membership(self):
        query = parse_query("SELECT * FROM images WHERE camera_id IN (1, 2, 3)")
        assert query.metadata_predicates[0].value == (1, 2, 3)

    def test_single_value(self):
        query = parse_query("SELECT * FROM images WHERE camera_id IN (7)")
        assert query.metadata_predicates[0].value == (7,)

    def test_in_is_case_insensitive(self):
        query = parse_query("SELECT * FROM images WHERE location in ('austin')")
        assert query.metadata_predicates[0].operator == "in"

    def test_quoted_value_may_contain_comma(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('Detroit, MI', 'austin')")
        assert query.metadata_predicates[0].value == ("Detroit, MI", "austin")

    def test_combines_with_other_predicates(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('detroit') "
            "AND contains_object(fence) LIMIT 4")
        assert len(query.metadata_predicates) == 1
        assert len(query.content_predicates) == 1
        assert query.limit == 4

    @pytest.mark.parametrize("bad", [
        "SELECT * FROM images WHERE location IN ()",
        "SELECT * FROM images WHERE location IN (,)",
        "SELECT * FROM images WHERE location IN (1,,2)",
        "SELECT * FROM images WHERE location IN (detroit)",
    ])
    def test_malformed_in_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse_query(bad)


class TestBareScan:
    def test_no_where_clause_is_a_scan(self):
        query = parse_query("SELECT * FROM images")
        assert query.metadata_predicates == ()
        assert query.content_predicates == ()
        assert query.where is None

    def test_scan_with_limit(self):
        query = parse_query("SELECT * FROM images LIMIT 5")
        assert query.where is None
        assert query.limit == 5

    def test_query_model_allows_bare_scan(self):
        from repro.query.processor import Query

        assert Query().where is None


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(SqlParseError):
            parse_query("   ")

    def test_missing_select_list(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT FROM images WHERE camera_id = 1")

    def test_unsupported_predicate_shape(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location LIKE 'det%'")

    def test_dangling_or(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE camera_id = 1 OR")

    def test_error_reports_token_and_offset(self):
        sql = "SELECT * FROM images WHERE location LIKE 'det%'"
        with pytest.raises(SqlParseError) as excinfo:
            parse_query(sql)
        error = excinfo.value
        assert error.token == "LIKE"
        assert error.offset == sql.index("LIKE")
        assert "LIKE" in str(error)
        assert str(error.offset) in str(error)

    def test_error_at_end_of_input(self):
        sql = "SELECT * FROM images WHERE camera_id ="
        with pytest.raises(SqlParseError) as excinfo:
            parse_query(sql)
        assert excinfo.value.offset == len(sql)
        assert excinfo.value.token is None
        assert "end of input" in str(excinfo.value)

    def test_unterminated_string_literal(self):
        with pytest.raises(SqlParseError, match="unterminated"):
            parse_query("SELECT * FROM images WHERE location = 'detroit")

    def test_unexpected_character(self):
        with pytest.raises(SqlParseError, match="unexpected character"):
            parse_query("SELECT * FROM images WHERE camera_id = 1 @ 2")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError, match="trailing"):
            parse_query("SELECT * FROM images WHERE camera_id = 1 LIMIT 2 xyz")


class TestBooleanOperators:
    def test_or_parses_to_disjunction(self):
        from repro.query.ast import OrExpr, PredicateExpr

        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 OR camera_id = 2")
        assert isinstance(query.where, OrExpr)
        assert all(isinstance(child, PredicateExpr)
                   for child in query.where.children)
        # The flat conjunctive decomposition still lists every leaf.
        assert len(query.metadata_predicates) == 2

    def test_and_binds_tighter_than_or(self):
        from repro.query.ast import AndExpr, OrExpr

        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 "
            "OR camera_id = 2 AND location = 'austin'")
        assert isinstance(query.where, OrExpr)
        assert isinstance(query.where.children[1], AndExpr)

    def test_parentheses_override_precedence(self):
        from repro.query.ast import AndExpr, OrExpr

        query = parse_query(
            "SELECT * FROM images WHERE (camera_id = 1 OR camera_id = 2) "
            "AND location = 'austin'")
        assert isinstance(query.where, AndExpr)
        assert isinstance(query.where.children[0], OrExpr)

    def test_not_predicate(self):
        from repro.query.ast import NotExpr, PredicateExpr

        query = parse_query(
            "SELECT * FROM images WHERE NOT contains_object(bicycle)")
        assert isinstance(query.where, NotExpr)
        assert isinstance(query.where.child, PredicateExpr)
        assert query.content_predicates == (ContainsObject("bicycle"),)

    def test_not_in_membership(self):
        from repro.query.ast import NotExpr

        query = parse_query(
            "SELECT * FROM images WHERE camera_id NOT IN (1, 2)")
        assert isinstance(query.where, NotExpr)
        assert query.metadata_predicates[0].operator == "in"

    def test_nested_ands_flattened(self):
        from repro.query.ast import AndExpr

        query = parse_query(
            "SELECT * FROM images WHERE (camera_id = 1 AND timestamp < 5) "
            "AND location = 'austin'")
        assert isinstance(query.where, AndExpr)
        assert len(query.where.children) == 3
        # A flattened all-leaf AND is still the paper's conjunctive shape.
        assert len(query.metadata_predicates) == 3

    def test_mixed_metadata_and_content_disjunction(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' "
            "OR contains_object(bicycle)")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "==", "detroit"),)
        assert query.content_predicates == (ContainsObject("bicycle"),)


class TestProjection:
    def test_column_projection(self):
        query = parse_query("SELECT image_id, location FROM images")
        assert query.select == ("image_id", "location")
        assert query.aggregates == ()

    def test_star_is_no_projection(self):
        query = parse_query("SELECT * FROM images")
        assert query.select is None

    def test_projection_with_where(self):
        query = parse_query(
            "SELECT location FROM images WHERE contains_object(dog)")
        assert query.select == ("location",)
        assert query.content_predicates == (ContainsObject("dog"),)


class TestAggregates:
    def test_count_star(self):
        from repro.query.ast import Aggregate

        query = parse_query("SELECT COUNT(*) FROM images")
        assert query.select == (Aggregate("count", None),)
        assert query.is_aggregate

    def test_count_column(self):
        from repro.query.ast import Aggregate

        query = parse_query("SELECT COUNT(location) FROM images")
        assert query.select == (Aggregate("count", "location"),)

    @pytest.mark.parametrize("func", ["SUM", "AVG", "MIN", "MAX"])
    def test_column_aggregates(self, func):
        query = parse_query(f"SELECT {func}(timestamp) FROM images")
        assert query.aggregates[0].func == func.lower()
        assert query.aggregates[0].argument == "timestamp"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlParseError, match="only COUNT"):
            parse_query("SELECT SUM(*) FROM images")

    def test_group_by_with_aggregate(self):
        query = parse_query(
            "SELECT location, COUNT(*) FROM images GROUP BY location")
        assert query.group_by == ("location",)
        assert query.select[0] == "location"

    def test_group_by_without_aggregate_is_distinct(self):
        query = parse_query("SELECT location FROM images GROUP BY location")
        assert query.is_aggregate
        assert query.aggregates == ()

    def test_ungrouped_column_beside_aggregate_rejected(self):
        with pytest.raises(SqlParseError, match="GROUP BY"):
            parse_query("SELECT location, COUNT(*) FROM images")

    def test_select_star_with_group_by_rejected(self):
        with pytest.raises(SqlParseError, match="SELECT \\*"):
            parse_query("SELECT * FROM images GROUP BY location")

    def test_column_named_like_aggregate_function(self):
        # Only a call — IDENT followed by ( — is an aggregate.
        query = parse_query("SELECT count FROM images")
        assert query.select == ("count",)
        assert not query.is_aggregate


class TestOrderBy:
    def test_order_by_column_defaults_ascending(self):
        query = parse_query("SELECT * FROM images ORDER BY timestamp")
        assert query.order_by[0].key == "timestamp"
        assert query.order_by[0].ascending

    def test_order_by_desc(self):
        query = parse_query("SELECT * FROM images ORDER BY timestamp DESC")
        assert not query.order_by[0].ascending

    def test_order_by_multiple_keys(self):
        query = parse_query(
            "SELECT * FROM images ORDER BY location ASC, timestamp DESC")
        assert [item.label for item in query.order_by] == [
            "location", "timestamp"]

    def test_order_by_aggregate(self):
        from repro.query.ast import Aggregate

        query = parse_query(
            "SELECT location, COUNT(*) FROM images GROUP BY location "
            "ORDER BY COUNT(*) DESC LIMIT 3")
        assert query.order_by[0].key == Aggregate("count", None)
        assert not query.order_by[0].ascending
        assert query.limit == 3

    def test_order_by_aggregate_requires_aggregate_query(self):
        with pytest.raises(SqlParseError, match="aggregate"):
            parse_query("SELECT * FROM images ORDER BY COUNT(*)")

    def test_order_by_key_must_be_selected_in_aggregate_query(self):
        with pytest.raises(SqlParseError, match="ORDER BY"):
            parse_query("SELECT location, COUNT(*) FROM images "
                        "GROUP BY location ORDER BY SUM(timestamp)")


class TestQuotedLiteralEdgeCases:
    """Keywords, parentheses and escapes inside string literals stay text."""

    @pytest.mark.parametrize("keyword", ["and", "or", "not", "limit",
                                         "group by", "order by", "select"])
    def test_keywords_inside_literals_are_opaque(self, keyword):
        query = parse_query(
            f"SELECT * FROM images WHERE note = 'a {keyword} b'")
        assert query.metadata_predicates[0].value == f"a {keyword} b"
        assert query.limit is None

    def test_parentheses_inside_literal(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = '(not a group)' "
            "AND camera_id = 1")
        assert query.metadata_predicates[0].value == "(not a group)"
        assert query.metadata_predicates[1].value == 1

    def test_group_keyword_in_literal_before_real_group_by(self):
        query = parse_query(
            "SELECT note FROM images WHERE note != 'group by nothing' "
            "GROUP BY note")
        assert query.group_by == ("note",)
        assert query.metadata_predicates[0].value == "group by nothing"

    def test_order_keyword_in_literal_before_real_order_by(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = 'order by chaos' "
            "ORDER BY timestamp DESC LIMIT 2")
        assert query.metadata_predicates[0].value == "order by chaos"
        assert query.order_by[0].label == "timestamp"
        assert query.limit == 2

    def test_semicolon_inside_literal(self):
        query = parse_query("SELECT * FROM images WHERE note = 'a;b';")
        assert query.metadata_predicates[0].value == "a;b"

    def test_doubled_quote_escape_with_keyword(self):
        query = parse_query(
            "SELECT * FROM images "
            "WHERE note = 'it''s rock and roll' AND camera_id = 3")
        assert query.metadata_predicates[0].value == "it's rock and roll"
        assert query.metadata_predicates[1].value == 3

    def test_trailing_semicolon_after_limit(self):
        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 LIMIT 7;")
        assert query.limit == 7

    def test_quote_inside_in_list_with_parens(self):
        query = parse_query(
            "SELECT * FROM images WHERE note IN ('a (weird) one', 'b''s')")
        assert query.metadata_predicates[0].value == ("a (weird) one", "b's")


class TestConstraints:
    def test_constraints_attached(self):
        constraints = UserConstraints(max_accuracy_loss=0.05)
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)",
                            constraints=constraints)
        assert query.constraints is constraints

    def test_default_constraints(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)")
        assert query.constraints == UserConstraints()
