"""Tests for the SQL-ish query parser."""

import pytest

from repro.core.selector import UserConstraints
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.sql import SqlParseError, parse_query


class TestBasicParsing:
    def test_paper_example(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' "
            "AND contains_object(bicycle)")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "==", "detroit"),)
        assert query.content_predicates == (ContainsObject("bicycle"),)

    def test_contains_object_only(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(komondor)")
        assert query.metadata_predicates == ()
        assert query.content_predicates == (ContainsObject("komondor"),)

    def test_case_insensitive_keywords(self):
        query = parse_query("select * from images where Contains_Object(acorn)")
        assert query.content_predicates == (ContainsObject("acorn"),)

    def test_trailing_semicolon(self):
        query = parse_query("SELECT * FROM images WHERE camera_id = 3;")
        assert query.metadata_predicates[0].value == 3

    def test_quoted_category(self):
        query = parse_query("SELECT * FROM images WHERE contains_object('fence')")
        assert query.content_predicates == (ContainsObject("fence"),)


class TestLiteralsAndOperators:
    @pytest.mark.parametrize("sql_op,expected", [
        ("=", "=="), ("!=", "!="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">="),
    ])
    def test_operators(self, sql_op, expected):
        query = parse_query(f"SELECT * FROM images WHERE timestamp {sql_op} 100")
        assert query.metadata_predicates[0].operator == expected

    def test_numeric_literals(self):
        query = parse_query("SELECT * FROM images WHERE timestamp >= 12.5")
        assert query.metadata_predicates[0].value == pytest.approx(12.5)

    def test_string_literals_double_quotes(self):
        query = parse_query('SELECT * FROM images WHERE location = "austin"')
        assert query.metadata_predicates[0].value == "austin"

    def test_unquoted_string_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location = detroit")

    def test_doubled_quote_escape_collapsed(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'rock ''n'' roll'")
        assert query.metadata_predicates[0].value == "rock 'n' roll"

    def test_doubled_quote_escape_in_double_quotes(self):
        query = parse_query(
            'SELECT * FROM images WHERE location = "say ""hi"" twice"')
        assert query.metadata_predicates[0].value == 'say "hi" twice'

    def test_single_quote_inside_double_quotes_untouched(self):
        query = parse_query('SELECT * FROM images WHERE location = "it\'s"')
        assert query.metadata_predicates[0].value == "it's"

    def test_literal_that_is_one_escaped_quote(self):
        query = parse_query("SELECT * FROM images WHERE location = ''''")
        assert query.metadata_predicates[0].value == "'"

    def test_escaped_quote_does_not_terminate_literal(self):
        # The doubled quote must not close the literal: the AND inside the
        # string stays part of it, the trailing predicate still parses.
        query = parse_query("SELECT * FROM images "
                            "WHERE location = 'rock ''n'' roll and blues' "
                            "AND camera_id = 3")
        assert query.metadata_predicates[0].value == "rock 'n' roll and blues"
        assert query.metadata_predicates[1].value == 3

    def test_doubled_quote_escape_in_in_list(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('it''s', 'plain')")
        assert query.metadata_predicates[0].value == ("it's", "plain")


class TestConjunctions:
    def test_multiple_predicates(self):
        query = parse_query(
            "SELECT * FROM images WHERE location = 'detroit' AND timestamp < 500 "
            "AND contains_object(wallet) AND contains_object(fence)")
        assert len(query.metadata_predicates) == 2
        assert len(query.content_predicates) == 2

    def test_and_is_case_insensitive(self):
        query = parse_query(
            "SELECT * FROM images WHERE camera_id = 1 and contains_object(coho)")
        assert len(query.metadata_predicates) == 1
        assert len(query.content_predicates) == 1

    def test_and_inside_string_literal_is_not_a_conjunction(self):
        query = parse_query(
            "SELECT * FROM images WHERE genre = 'rock and roll' "
            "AND contains_object(coho)")
        assert query.metadata_predicates == (
            MetadataPredicate("genre", "==", "rock and roll"),)
        assert query.content_predicates == (ContainsObject("coho"),)

    def test_and_inside_in_list_literal(self):
        query = parse_query(
            "SELECT * FROM images WHERE genre IN ('rock and roll', 'jazz')")
        assert query.metadata_predicates[0].value == ("rock and roll", "jazz")


class TestLimit:
    def test_limit_parsed(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object(komondor) LIMIT 5")
        assert query.limit == 5

    def test_limit_with_trailing_semicolon(self):
        query = parse_query(
            "SELECT * FROM images WHERE contains_object(komondor) LIMIT 5;")
        assert query.limit == 5

    def test_no_limit_defaults_to_none(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(dog)")
        assert query.limit is None

    def test_limit_zero_allowed(self):
        query = parse_query("SELECT * FROM images WHERE camera_id = 1 LIMIT 0")
        assert query.limit == 0

    def test_limit_keyword_is_case_insensitive(self):
        query = parse_query("select * from images where camera_id = 1 limit 12")
        assert query.limit == 12

    @pytest.mark.parametrize("bad", ["-1", "abc", "2.5", "1e3"])
    def test_malformed_limit_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse_query(f"SELECT * FROM images WHERE camera_id = 1 LIMIT {bad}")

    def test_limit_without_value_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE camera_id = 1 LIMIT")

    def test_limit_inside_string_literal_is_not_a_limit(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = 'speed limit 55'")
        assert query.limit is None
        assert query.metadata_predicates[0].value == "speed limit 55"

    def test_limit_after_string_literal_containing_limit(self):
        query = parse_query(
            "SELECT * FROM images WHERE note = 'speed limit 55' LIMIT 3")
        assert query.limit == 3
        assert query.metadata_predicates[0].value == "speed limit 55"


class TestInPredicate:
    def test_string_membership(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('detroit', 'austin')")
        assert query.metadata_predicates == (
            MetadataPredicate("location", "in", ("detroit", "austin")),)

    def test_numeric_membership(self):
        query = parse_query("SELECT * FROM images WHERE camera_id IN (1, 2, 3)")
        assert query.metadata_predicates[0].value == (1, 2, 3)

    def test_single_value(self):
        query = parse_query("SELECT * FROM images WHERE camera_id IN (7)")
        assert query.metadata_predicates[0].value == (7,)

    def test_in_is_case_insensitive(self):
        query = parse_query("SELECT * FROM images WHERE location in ('austin')")
        assert query.metadata_predicates[0].operator == "in"

    def test_quoted_value_may_contain_comma(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('Detroit, MI', 'austin')")
        assert query.metadata_predicates[0].value == ("Detroit, MI", "austin")

    def test_combines_with_other_predicates(self):
        query = parse_query(
            "SELECT * FROM images WHERE location IN ('detroit') "
            "AND contains_object(fence) LIMIT 4")
        assert len(query.metadata_predicates) == 1
        assert len(query.content_predicates) == 1
        assert query.limit == 4

    @pytest.mark.parametrize("bad", [
        "SELECT * FROM images WHERE location IN ()",
        "SELECT * FROM images WHERE location IN (,)",
        "SELECT * FROM images WHERE location IN (1,,2)",
        "SELECT * FROM images WHERE location IN (detroit)",
    ])
    def test_malformed_in_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse_query(bad)


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(SqlParseError):
            parse_query("   ")

    def test_missing_where_predicates(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images")

    def test_unsupported_projection(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT id FROM images WHERE camera_id = 1")

    def test_unsupported_predicate_shape(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE location LIKE 'det%'")

    def test_or_not_supported(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM images WHERE camera_id = 1 OR camera_id = 2")


class TestConstraints:
    def test_constraints_attached(self):
        constraints = UserConstraints(max_accuracy_loss=0.05)
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)",
                            constraints=constraints)
        assert query.constraints is constraints

    def test_default_constraints(self):
        query = parse_query("SELECT * FROM images WHERE contains_object(ferret)")
        assert query.constraints == UserConstraints()
