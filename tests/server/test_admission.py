"""Admission control: bounded queue, immediate backpressure, drain, timeouts."""

import threading
import time

import pytest

from repro.query.ast import QueryTimeoutError
from repro.server.admission import AdmissionController
from repro.server.protocol import BackpressureError


def wait_until(condition, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture()
def controller():
    admission = AdmissionController(max_workers=2, max_queue=4)
    yield admission
    admission.shutdown(drain=False)


class TestSubmit:
    def test_result_round_trip(self, controller):
        assert controller.submit(lambda: 21 * 2).result(timeout=5) == 42

    def test_exceptions_forwarded(self, controller):
        future = controller.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=5)
        assert wait_until(lambda: controller.stats()["failed"] == 1)

    def test_many_tasks_all_complete(self):
        admission = AdmissionController(max_workers=2, max_queue=32)
        try:
            futures = [admission.submit(lambda i=i: i * i)
                       for i in range(20)]
            assert [f.result(timeout=5) for f in futures] == \
                [i * i for i in range(20)]
            assert admission.stats()["submitted"] == 20
        finally:
            admission.shutdown()


class TestBackpressure:
    def test_full_queue_rejects_immediately(self):
        admission = AdmissionController(max_workers=1, max_queue=1)
        release = threading.Event()
        try:
            blocker = admission.submit(release.wait)
            assert wait_until(
                lambda: admission.stats()["in_flight"] == 1)
            queued = admission.submit(lambda: "queued")
            started = time.monotonic()
            with pytest.raises(BackpressureError) as info:
                admission.submit(lambda: "rejected")
            # The rejection must not have waited on the running query.
            assert time.monotonic() - started < 1.0
            assert info.value.max_queue == 1
            assert info.value.to_dict()["type"] == "BackpressureError"
            release.set()
            assert queued.result(timeout=5) == "queued"
            assert blocker.result(timeout=5) is True
            assert admission.stats()["rejected"] == 1
        finally:
            release.set()
            admission.shutdown()

    def test_rejected_after_shutdown(self, controller):
        controller.shutdown()
        with pytest.raises(BackpressureError):
            controller.submit(lambda: None)


class TestShutdown:
    def test_drain_completes_queued_work(self):
        admission = AdmissionController(max_workers=1, max_queue=8)
        gate = threading.Event()
        first = admission.submit(gate.wait)
        others = [admission.submit(lambda i=i: i) for i in range(4)]
        closer = threading.Thread(target=admission.shutdown)
        closer.start()
        assert wait_until(lambda: admission.closing)
        gate.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        assert first.result(timeout=1) is True
        assert [f.result(timeout=1) for f in others] == list(range(4))

    def test_no_drain_fails_queued_futures(self):
        admission = AdmissionController(max_workers=1, max_queue=8)
        gate = threading.Event()
        admission.submit(gate.wait)
        assert wait_until(lambda: admission.stats()["in_flight"] == 1)
        queued = admission.submit(lambda: "never")
        closer = threading.Thread(
            target=lambda: admission.shutdown(drain=False))
        closer.start()
        # The queued future fails during the drain, before workers join.
        with pytest.raises(BackpressureError):
            queued.result(timeout=5)
        gate.set()
        closer.join(timeout=5)
        assert not closer.is_alive()

    def test_idempotent(self, controller):
        controller.shutdown()
        controller.shutdown()


class TestCancelFor:
    def test_none_timeout_means_no_hook(self, controller):
        assert controller.cancel_for(None) is None

    def test_hook_raises_past_deadline(self, controller):
        cancel = controller.cancel_for(1e-6)
        time.sleep(0.01)
        with pytest.raises(QueryTimeoutError):
            cancel()

    def test_hook_silent_before_deadline(self, controller):
        cancel = controller.cancel_for(60.0)
        cancel()

    def test_clock_starts_at_submission(self, controller):
        cancel = controller.cancel_for(0.05, started=time.monotonic() - 1.0)
        with pytest.raises(QueryTimeoutError):
            cancel()


class TestValidation:
    @pytest.mark.parametrize("kwargs", [{"max_workers": 0}, {"max_queue": 0}])
    def test_positive_sizes_required(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
