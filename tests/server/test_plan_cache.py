"""Plan cache: shape normalization, hit/rebind/miss, LRU, invalidation hooks."""

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import connect
from repro.db.retention import RetentionPolicy
from repro.query.ast import SqlParseError
from repro.server.plan_cache import PlanCache, normalize
from tests.conftest import TINY_SIZE


class TestNormalize:
    def test_literals_stripped(self):
        shape, literals = normalize(
            "SELECT * FROM images WHERE location = 'detroit' AND speed > 3.5")
        assert "'detroit'" not in shape and "3.5" not in shape
        assert shape.count("?") == 2
        assert literals == ("detroit", 3.5)

    def test_same_shape_different_literals(self):
        shape_a, lit_a = normalize("SELECT * FROM images WHERE ts > 10")
        shape_b, lit_b = normalize("SELECT * FROM images WHERE ts > 99")
        assert shape_a == shape_b
        assert lit_a != lit_b

    def test_whitespace_insensitive(self):
        a, _ = normalize("SELECT *  FROM   images")
        b, _ = normalize("SELECT * FROM images")
        assert a == b

    def test_structure_preserved(self):
        a, _ = normalize("SELECT * FROM cam_a")
        b, _ = normalize("SELECT * FROM cam_b")
        assert a != b

    def test_untokenizable_raises_parse_error(self):
        with pytest.raises(SqlParseError):
            normalize("SELECT ~ FROM images")


class TestPlanCache:
    KEY = ("shape", None, None, "archive")

    def test_miss_then_hit(self):
        cache = PlanCache()
        status, entry = cache.lookup(self.KEY, ("a",))
        assert status == "miss" and entry is None
        cache.store(self.KEY, ("a",), "plan")
        status, entry = cache.lookup(self.KEY, ("a",))
        assert status == "hit" and entry.plans == "plan"

    def test_rebind_on_new_literals(self):
        cache = PlanCache()
        cache.store(self.KEY, ("a",), "plan")
        status, entry = cache.lookup(self.KEY, ("b",))
        assert status == "rebind" and entry.plans == "plan"
        assert cache.stats()["rebinds"] == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store("k1", (), "p1")
        cache.store("k2", (), "p2")
        cache.lookup("k1", ())          # k1 becomes most recent
        cache.store("k3", (), "p3")     # evicts k2
        assert cache.lookup("k2", ())[0] == "miss"
        assert cache.lookup("k1", ())[0] == "hit"
        assert cache.stats()["evictions"] == 1

    def test_invalidate_clears(self):
        cache = PlanCache()
        cache.store(self.KEY, (), "plan")
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup(self.KEY, ())[0] == "miss"

    def test_key_includes_constraints_and_scenario(self):
        loose = UserConstraints(max_accuracy_loss=0.2)
        tight = UserConstraints(max_accuracy_loss=0.01)
        sql = "SELECT * FROM images"
        key_a, _ = PlanCache.key_for(sql, loose, "archive")
        key_b, _ = PlanCache.key_for(sql, tight, "archive")
        key_c, _ = PlanCache.key_for(sql, loose, "camera")
        assert len({key_a, key_b, key_c}) == 3

    def test_hit_rate(self):
        cache = PlanCache()
        cache.lookup("k", ())            # miss
        cache.store("k", (), "p")
        cache.lookup("k", ())            # hit
        cache.lookup("k", ("x",))        # rebind
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


@pytest.fixture()
def cached_db():
    corpus = generate_corpus((get_category("komondor"),), n_images=24,
                             image_size=TINY_SIZE,
                             rng=np.random.default_rng(3))
    return connect({"cam_a": corpus, "cam_b": corpus},
                   calibrate_target_fps=None, plan_cache=True)


class TestDatabaseIntegration:
    SQL = "SELECT image_id FROM cam_a WHERE location = 'detroit'"

    def test_repeat_query_hits(self, cached_db):
        first = cached_db.execute(self.SQL).fetchall()
        second = cached_db.execute(self.SQL).fetchall()
        assert first == second
        stats = cached_db.plan_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_rebind_changes_results(self, cached_db):
        cached_db.execute(self.SQL)
        seattle = cached_db.execute(
            "SELECT image_id FROM cam_a WHERE location = 'seattle'")
        assert cached_db.plan_cache.stats()["rebinds"] == 1
        fresh = connect({"cam_a": cached_db.corpus_for("cam_a")},
                        calibrate_target_fps=None)
        expected = fresh.execute(
            "SELECT image_id FROM cam_a WHERE location = 'seattle'")
        assert seattle.fetchall() == expected.fetchall()

    def test_explain_shares_cache(self, cached_db):
        cached_db.explain(self.SQL)
        cached_db.execute(self.SQL)
        stats = cached_db.plan_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_scenario_switch_invalidates(self, cached_db):
        cached_db.execute(self.SQL)
        cached_db.use_scenario("camera")
        assert len(cached_db.plan_cache) == 0
        cached_db.execute(self.SQL)
        assert cached_db.plan_cache.stats()["misses"] == 2

    def test_attach_detach_invalidate(self, cached_db):
        cached_db.execute(self.SQL)
        cached_db.attach("cam_c", cached_db.corpus_for("cam_a"))
        assert len(cached_db.plan_cache) == 0
        cached_db.execute(self.SQL)
        cached_db.detach("cam_c")
        assert len(cached_db.plan_cache) == 0

    def test_retention_change_invalidates(self, cached_db):
        cached_db.execute(self.SQL)
        cached_db.set_retention("cam_a", RetentionPolicy(max_rows=10))
        assert len(cached_db.plan_cache) == 0

    def test_explicit_tables_bypass_cache(self, cached_db):
        cached_db.execute("SELECT count(*) FROM all_cameras",
                          tables=["cam_a"])
        stats = cached_db.plan_cache.stats()
        assert stats["hits"] + stats["rebinds"] + stats["misses"] == 0

    def test_enable_is_idempotent(self, cached_db):
        cache = cached_db.plan_cache
        assert cached_db.enable_plan_cache() is cache

    def test_constructor_capacity(self):
        corpus = generate_corpus((get_category("komondor"),), n_images=8,
                                 image_size=TINY_SIZE,
                                 rng=np.random.default_rng(5))
        db = connect(corpus, calibrate_target_fps=None, plan_cache=7)
        assert db.plan_cache.capacity == 7
