"""Wire-protocol framing: encode/decode, envelopes, error payloads."""

import json

import pytest

from repro.query.ast import QueryError, QueryTimeoutError, SqlParseError
from repro.server.protocol import (MAX_LINE_BYTES, BackpressureError,
                                   ProtocolError, decode, encode,
                                   error_payload, error_response, ok_response)


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        line = encode({"cmd": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"cmd": "ping"}

    def test_roundtrip(self):
        message = {"cmd": "execute", "sql": "SELECT * FROM images",
                   "id": 7, "timeout": 1.5}
        assert decode(encode(message)) == message

    def test_unicode_survives(self):
        message = {"sql": "SELECT * FROM images WHERE location = 'détroit'"}
        assert decode(encode(message)) == message

    def test_decode_accepts_str(self):
        assert decode('{"cmd": "ping"}') == {"cmd": "ping"}

    @pytest.mark.parametrize("bad", [b"", b"   \n", b"not json\n",
                                     b"[1, 2]\n", b'"string"\n'])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode(bad)

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode(b"x" * (MAX_LINE_BYTES + 1))


class TestEnvelopes:
    def test_ok_echoes_id(self):
        response = ok_response({"cmd": "ping", "id": "abc"}, {"pong": True})
        assert response == {"ok": True, "id": "abc", "result": {"pong": True}}

    def test_ok_without_id(self):
        assert "id" not in ok_response({"cmd": "ping"}, {})

    def test_error_echoes_id(self):
        response = error_response({"id": 3}, QueryError("boom"))
        assert response["ok"] is False
        assert response["id"] == 3
        assert response["error"]["type"] == "QueryError"


class TestErrorPayloads:
    def test_parse_error_carries_location(self):
        exc = SqlParseError("unexpected token", offset=7, token="nope")
        payload = error_payload(exc)
        assert payload == {"type": "SqlParseError",
                           "message": "unexpected token",
                           "token": "nope", "offset": 7}
        rebuilt = SqlParseError(payload["message"], offset=payload["offset"],
                                token=payload["token"])
        assert str(rebuilt) == str(exc)

    def test_query_error_uses_concrete_type(self):
        payload = error_payload(QueryTimeoutError("too slow"))
        assert payload == {"type": "QueryTimeoutError", "message": "too slow"}

    def test_backpressure_carries_queue_state(self):
        payload = error_payload(BackpressureError("full", queue_depth=4,
                                                  max_queue=4))
        assert payload["type"] == "BackpressureError"
        assert payload["queue_depth"] == payload["max_queue"] == 4

    def test_generic_fallback(self):
        payload = error_payload(RuntimeError("oops"))
        assert payload == {"type": "RuntimeError", "message": "oops"}
