"""End-to-end tests for the network serving layer, over real sockets.

One server (module scope — training is shared) serves a two-camera catalog
with a trained ``komondor`` predicate; each test opens its own client
connection(s).  Dedicated single-worker servers exercise backpressure and
shutdown without perturbing the shared one.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.costs.scenario import CAMERA
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import connect as db_connect
from repro.db.retention import RetentionPolicy
from repro.query.ast import QueryError, QueryTimeoutError, SqlParseError
from repro.server import (BackpressureError, ProtocolError, ServerError,
                          VisualDatabaseServer, connect, serve)
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
CONTENT_SQL = ("SELECT * FROM cam_a WHERE contains_object(komondor) "
               "LIMIT 5")


def make_corpus(n_images: int, seed: int):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.9)


def wait_until(condition, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture(scope="module")
def db(tiny_optimizer, tiny_device):
    database = db_connect(
        {"cam_a": make_corpus(30, seed=9), "cam_b": make_corpus(24, seed=10)},
        device=tiny_device, scenario=CAMERA, calibrate_target_fps=None,
        default_constraints=CONSTRAINED)
    database.register_optimizer("komondor", tiny_optimizer,
                                reference_params=REFERENCE_PARAMS)
    return database


@pytest.fixture(scope="module")
def server(db):
    with serve(db, port=0, max_workers=2, max_queue=8) as running:
        yield running


@pytest.fixture()
def conn(server):
    with connect(*server.address, timeout=30) as connection:
        yield connection


class TestBasics:
    def test_ping_and_tables(self, conn):
        assert conn.ping() is True
        assert conn.tables() == ["cam_a", "cam_b"]

    def test_content_query_over_the_wire(self, conn, db):
        cursor = conn.execute(CONTENT_SQL)
        rows = cursor.fetchall()
        assert 0 < len(rows) <= 5
        assert all(row["contains_komondor"] for row in rows)
        local = db.execute(CONTENT_SQL)
        assert [row["image_id"] for row in rows] == \
            [row["image_id"] for row in local]

    def test_aggregate_query(self, conn, db):
        cursor = conn.execute("SELECT count(*) FROM cam_a")
        rows = cursor.fetchall()
        assert rows == [{"count(*)": len(db.corpus_for('cam_a'))}]

    def test_fanout_carries_provenance(self, conn):
        cursor = conn.execute("SELECT * FROM all_cameras "
                              "WHERE contains_object(komondor) LIMIT 6")
        tables = {row["__table__"] for row in cursor}
        assert tables <= {"cam_a", "cam_b"} and tables

    def test_tables_restriction(self, conn, db):
        cursor = conn.execute("SELECT count(*) FROM all_cameras",
                              tables=["cam_b"])
        assert cursor.fetchall() == [
            {"count(*)": len(db.corpus_for("cam_b"))}]

    def test_constraints_forwarded(self, conn):
        cursor = conn.execute(CONTENT_SQL,
                              constraints={"max_accuracy_loss": 0.3})
        assert cursor.rowcount >= 0

    def test_explain_returns_serialized_plans(self, conn):
        plan = conn.explain(CONTENT_SQL)["plan"]
        assert plan["table"] == "cam_a"
        assert plan["limit"] == 5
        assert plan["content_steps"][0]["category"] == "komondor"
        json.dumps(plan)  # fully JSON-serializable
        plans = conn.explain("SELECT count(*) FROM all_cameras")["plans"]
        assert set(plans) == {"cam_a", "cam_b"}

    def test_stats_shape(self, conn):
        stats = conn.stats()
        assert stats["scenario"] == "camera"
        assert stats["tables"] == ["cam_a", "cam_b"]
        assert stats["predicates"] == ["komondor"]
        assert stats["sessions"] >= 1
        assert {"completed", "failed", "timeouts",
                "rejected"} <= set(stats["queries"])
        assert stats["admission"]["max_workers"] == 2


class TestThreadNames:
    """Every long-lived thread carries a descriptive name, so thread dumps
    of a wedged server read as a story instead of ``Thread-7``."""

    def test_server_threads_are_named(self, server, conn):
        conn.execute(CONTENT_SQL).fetchall()  # ensure workers have run
        names = [thread.name for thread in threading.enumerate()]
        workers = [name for name in names
                   if name.startswith("repro-server-worker-")]
        assert len(workers) == server.admission.max_workers
        assert f"repro-server-{server.address[1]}" in names

    def test_fanout_pool_threads_are_named(self, db):
        seen = []

        def capture():
            seen.append(threading.current_thread().name)

        results = db.execute("SELECT count(*) FROM all_cameras",
                             cancel=capture)
        assert len(results) >= 1
        assert seen, "cancel hook never ran"
        assert any(name.startswith("repro-fanout") for name in seen)


class TestCursorPaging:
    SQL = "SELECT image_id FROM cam_a"

    def test_pages_without_rerunning(self, conn, server):
        completed_before = server.counters.snapshot()["completed"]
        cursor = conn.execute(self.SQL)
        total = cursor.rowcount
        seen = []
        while True:
            page = cursor.fetchmany(7)
            if not page:
                break
            assert len(page) <= 7
            seen.extend(row["image_id"] for row in page)
        assert len(seen) == total == len(set(seen))
        # Paging fetched from the parked result set: one query executed.
        assert server.counters.snapshot()["completed"] == completed_before + 1

    def test_remaining_counts_down(self, conn):
        cursor = conn.execute(self.SQL)
        before = cursor.remaining
        cursor.fetchmany(4)
        assert cursor.remaining == before - 4

    def test_fetchone_and_exhaustion(self, conn):
        cursor = conn.execute(self.SQL + " LIMIT 2")
        assert cursor.fetchone() is not None
        assert cursor.fetchone() is not None
        assert cursor.fetchone() is None
        assert cursor.fetchmany(10) == []

    def test_close_cursor_frees_slot(self, conn):
        cursor = conn.execute(self.SQL)
        cursor.close()
        with pytest.raises(ProtocolError):
            conn.fetch(cursor.cursor_id)

    def test_multiple_cursors_independent(self, conn):
        a = conn.execute(self.SQL + " LIMIT 3")
        b = conn.execute("SELECT location FROM cam_b LIMIT 2")
        assert len(a.fetchall()) == 3
        assert len(b.fetchall()) == 2


class TestErrorsKeepSessionAlive:
    def test_parse_error_with_location(self, conn):
        with pytest.raises(SqlParseError) as info:
            conn.execute("SELEKT nope")
        assert info.value.offset == 0
        assert conn.ping() is True

    def test_query_error(self, conn):
        with pytest.raises(QueryError):
            conn.execute("SELECT no_such_column FROM cam_a")
        assert conn.ping() is True

    def test_unknown_cursor(self, conn):
        with pytest.raises(ProtocolError):
            conn.fetch(99999)
        assert conn.ping() is True

    def test_unmapped_error_becomes_server_error(self, server):
        # TypeError has no local counterpart: generic ServerError.
        with connect(*server.address, timeout=30) as c:
            with pytest.raises(ServerError) as info:
                c._call("execute", sql="SELECT * FROM cam_a",
                        constraints={"max_accuracy_loss": "high"})
            assert info.value.payload["type"] == "TypeError"
            assert c.ping() is True


class TestRawProtocol:
    """Straight sockets: envelope/id echo and malformed-line handling."""

    def request(self, sock_file, payload: bytes) -> dict:
        sock_file.write(payload)
        sock_file.flush()
        return json.loads(sock_file.readline())

    def test_id_echo_and_bad_json(self, server):
        with socket.create_connection(server.address, timeout=30) as sock:
            f = sock.makefile("rwb")
            response = self.request(
                f, b'{"cmd": "ping", "id": "req-1"}\n')
            assert response == {"ok": True, "id": "req-1",
                                "result": {"pong": True}}
            response = self.request(f, b"this is not json\n")
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            response = self.request(f, b'{"cmd": "warp", "id": 2}\n')
            assert response["id"] == 2
            assert "unknown command" in response["error"]["message"]
            # The session survived all of it.
            assert self.request(f, b'{"cmd": "ping"}\n')["ok"] is True

    def test_quit_closes_connection(self, server):
        with socket.create_connection(server.address, timeout=30) as sock:
            f = sock.makefile("rwb")
            response = self.request(f, b'{"cmd": "quit"}\n')
            assert response["result"] == {"bye": True}
            assert f.readline() == b""  # server hung up


class TestPlanCacheOverTheWire:
    def test_repeated_shape_served_from_cache(self, conn, db):
        sql = "SELECT image_id FROM cam_b WHERE location = 'detroit'"
        rebound = "SELECT image_id FROM cam_b WHERE location = 'seattle'"
        before = db.plan_cache.stats()
        conn.execute(sql)
        conn.execute(sql)        # exact repeat: hit
        conn.execute(rebound)    # same shape, new literal: rebind
        after = conn.stats()["plan_cache"]
        assert after["hits"] == before["hits"] + 1
        assert after["rebinds"] == before["rebinds"] + 1
        assert after["hit_rate"] > 0


class TestTimeouts:
    def test_timeout_aborts_and_session_survives(self, conn, server):
        timeouts_before = server.counters.snapshot()["timeouts"]
        with pytest.raises(QueryTimeoutError):
            conn.execute(CONTENT_SQL, timeout=1e-6)
        assert server.counters.snapshot()["timeouts"] == timeouts_before + 1
        # Same session, same query, no timeout: runs fine.
        assert conn.execute(CONTENT_SQL).rowcount >= 0

    def test_invalid_timeout_rejected(self, conn):
        with pytest.raises(ProtocolError):
            conn.execute(CONTENT_SQL, timeout=-1)


class TestBackpressure:
    def test_full_queue_rejects_immediately_e2e(self, db):
        with serve(db, port=0, max_workers=1, max_queue=1) as small:
            executor = db.executor_for("cam_a")
            results = {}

            def run(name, connection):
                try:
                    results[name] = connection.execute(
                        "SELECT count(*) FROM cam_a").fetchall()
                except Exception as exc:  # noqa: BLE001 - recorded
                    results[name] = exc

            with connect(*small.address, timeout=30) as c1, \
                    connect(*small.address, timeout=30) as c2, \
                    connect(*small.address, timeout=30) as c3:
                with executor._lock:  # the worker blocks inside execute
                    t1 = threading.Thread(target=run, args=("first", c1))
                    t1.start()
                    assert wait_until(
                        lambda: small.admission.stats()["in_flight"] == 1)
                    t2 = threading.Thread(target=run, args=("queued", c2))
                    t2.start()
                    assert wait_until(
                        lambda: small.admission.stats()["queue_depth"] == 1)
                    started = time.monotonic()
                    with pytest.raises(BackpressureError) as info:
                        c3.execute("SELECT count(*) FROM cam_a")
                    assert time.monotonic() - started < 2.0
                    assert info.value.max_queue == 1
                    # The rejected connection stays usable immediately.
                    assert c3.ping() is True
                t1.join(timeout=10)
                t2.join(timeout=10)
            expected = [{"count(*)": len(db.corpus_for("cam_a"))}]
            assert results["first"] == expected
            assert results["queued"] == expected
            assert small.counters.snapshot()["rejected"] == 1


class TestShutdown:
    def test_close_refuses_new_connections(self, db):
        dedicated = serve(db, port=0)
        address = dedicated.address
        with connect(*address, timeout=30) as c:
            assert c.ping() is True
        dedicated.close()
        with pytest.raises(OSError):
            connect(*address, timeout=1)

    def test_close_drains_in_flight_queries(self, db):
        dedicated = serve(db, port=0, max_workers=1)
        executor = db.executor_for("cam_b")
        result = {}

        def run(connection):
            result["rows"] = connection.execute(
                "SELECT count(*) FROM cam_b").fetchall()
            connection.close()

        connection = connect(*dedicated.address, timeout=30)
        with executor._lock:
            worker = threading.Thread(target=run, args=(connection,))
            worker.start()
            assert wait_until(
                lambda: dedicated.admission.stats()["in_flight"] == 1)
            closer = threading.Thread(target=dedicated.close)
            closer.start()
            # close() is draining: it cannot finish while we hold the lock.
            time.sleep(0.05)
            assert closer.is_alive()
        closer.join(timeout=10)
        worker.join(timeout=10)
        assert not closer.is_alive()
        assert result["rows"] == [{"count(*)": 24}]

    def test_close_idempotent(self, db):
        dedicated = serve(db, port=0)
        dedicated.close()
        dedicated.close()


class TestConcurrentClients:
    def test_many_clients_against_streaming_ingest(self, server, db):
        """N concurrent sessions querying while ingest + retention run."""
        batch = make_corpus(6, seed=42)
        db.set_retention("cam_a", RetentionPolicy(max_rows=60))
        stop = threading.Event()
        errors = []

        def client(seed: int):
            queries = [CONTENT_SQL,
                       "SELECT count(*) FROM cam_a",
                       "SELECT * FROM all_cameras "
                       "WHERE contains_object(komondor) LIMIT 4",
                       "SELECT image_id, location FROM cam_b "
                       "WHERE location = 'detroit'"]
            try:
                with connect(*server.address, timeout=60) as connection:
                    for step in range(8):
                        sql = queries[(seed + step) % len(queries)]
                        cursor = connection.execute(sql)
                        rows = cursor.fetchall()
                        assert len(rows) == cursor.rowcount
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        def churn():
            while not stop.is_set():
                db.ingest(batch.images, metadata=batch.metadata,
                          content=batch.content, table="cam_a")
                db.retain("cam_a")
                time.sleep(0.01)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
        finally:
            stop.set()
            churner.join(timeout=30)
            db.set_retention("cam_a", None)
        assert errors == []
        # Retention actually ran: cam_a stayed inside its window.
        assert len(db.corpus_for("cam_a")) <= 60 + len(batch)
