"""Tests for byte-size accounting."""

import pytest

from repro.storage.encoding import encoded_bytes, raw_bytes, representation_bytes
from repro.transforms.spec import TransformSpec


def test_raw_bytes_formula():
    assert raw_bytes(224, 224, 3) == 224 * 224 * 3
    assert raw_bytes(30, 30, 1) == 900


def test_raw_bytes_rejects_nonpositive():
    with pytest.raises(ValueError):
        raw_bytes(0, 10, 3)


def test_encoded_bytes_smaller_than_raw():
    assert encoded_bytes(224, 224, 3) < raw_bytes(224, 224, 3)


def test_encoded_bytes_at_ratio_one_equals_raw():
    assert encoded_bytes(10, 10, 3, compression_ratio=1.0) == raw_bytes(10, 10, 3)


def test_encoded_bytes_never_zero():
    assert encoded_bytes(2, 2, 1, compression_ratio=0.01) >= 1


def test_encoded_bytes_rejects_bad_ratio():
    with pytest.raises(ValueError):
        encoded_bytes(10, 10, 3, compression_ratio=0.0)


def test_representation_bytes_tracks_spec():
    small = representation_bytes(TransformSpec(30, "gray"))
    large = representation_bytes(TransformSpec(224, "rgb"))
    assert small == 900
    assert large == 150528
    assert representation_bytes(TransformSpec(224, "rgb"), compressed=True) < large
