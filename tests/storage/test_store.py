"""Tests for the representation store."""

import numpy as np
import pytest

from repro.storage.store import RepresentationStore
from repro.storage.tiers import MEMORY
from repro.transforms.spec import TransformSpec


@pytest.fixture
def images():
    return np.random.default_rng(0).random((6, 16, 16, 3))


def test_materialize_and_get(images):
    store = RepresentationStore()
    specs = [TransformSpec(8, "rgb"), TransformSpec(8, "gray")]
    store.materialize(images, specs)
    assert len(store) == 2
    assert store.get(specs[1]).shape == (6, 8, 8, 1)
    assert specs[0] in store


def test_get_missing_raises(images):
    store = RepresentationStore()
    with pytest.raises(KeyError):
        store.get(TransformSpec(8, "rgb"))


def test_get_or_transform_caches(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "red")
    first = store.get_or_transform(spec, images)
    second = store.get_or_transform(spec, np.zeros_like(images))
    # Second call returns the cached representation, not a re-transform.
    np.testing.assert_allclose(first, second)


def test_add_validates_shape(images):
    store = RepresentationStore()
    with pytest.raises(ValueError):
        store.add(TransformSpec(8, "gray"), np.zeros((3, 8, 8, 3)))


def test_materialize_rejects_single_image():
    store = RepresentationStore()
    with pytest.raises(ValueError):
        store.materialize(np.zeros((16, 16, 3)), [TransformSpec(8)])


def test_bytes_stored_counts_all_images(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "gray")
    store.materialize(images, [spec])
    assert store.bytes_stored() == 6 * 8 * 8
    assert store.bytes_stored(per_image=True) == 8 * 8


def test_load_time_uses_tier(images):
    fast = RepresentationStore(tier=MEMORY)
    spec = TransformSpec(8, "rgb")
    assert fast.load_time(spec) >= 0.0


def test_specs_listing(images):
    store = RepresentationStore()
    store.materialize(images, [TransformSpec(8, "rgb"), TransformSpec(16, "gray")])
    names = [spec.name for spec in store.specs()]
    assert names == sorted(names)
    assert len(names) == 2


def test_materialize_registers_specs(images):
    store = RepresentationStore()
    specs = [TransformSpec(8, "rgb"), TransformSpec(8, "gray")]
    store.materialize(images, specs)
    assert {spec.name for spec in store.registered_specs()} == \
        {spec.name for spec in specs}


def test_extend_appends_rows(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "gray")
    store.materialize(images, [spec])
    store.extend(spec, spec.apply_batch(images[:2]))
    assert store.rows(spec) == 8
    assert store.rows(TransformSpec(16, "rgb")) == 0


def test_extend_missing_or_mismatched_rejected(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "gray")
    with pytest.raises(KeyError):
        store.extend(spec, np.zeros((2, 8, 8, 1)))
    store.materialize(images, [spec])
    with pytest.raises(ValueError):
        store.extend(spec, np.zeros((2, 8, 8, 3)))


def test_clear_keeps_policy(images):
    store = RepresentationStore(byte_budget=10_000)
    store.materialize(images, [TransformSpec(8, "rgb")])
    store.clear()
    assert len(store) == 0
    assert store.bytes_stored() == 0
    assert store.byte_budget == 10_000
    assert [spec.name for spec in store.registered_specs()] == ["8x8-rgb"]


class TestByteBudget:
    # One 6-image representation at 8x8 gray = 384 simulated bytes.
    ONE = 6 * 8 * 8

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            RepresentationStore(byte_budget=0)

    def test_lru_eviction_order(self, images):
        store = RepresentationStore(byte_budget=2 * self.ONE)
        specs = [TransformSpec(8, "gray"), TransformSpec(8, "red"),
                 TransformSpec(8, "green")]
        for spec in specs:
            store.add(spec, spec.apply_batch(images))
        # Oldest (gray) was evicted; the two most recent remain.
        assert {spec.name for spec in store.specs()} == \
            {"8x8-red", "8x8-green"}
        assert store.evictions == 1
        assert store.bytes_stored() <= 2 * self.ONE

    def test_get_refreshes_recency(self, images):
        store = RepresentationStore(byte_budget=2 * self.ONE)
        gray, red, green = (TransformSpec(8, "gray"), TransformSpec(8, "red"),
                            TransformSpec(8, "green"))
        store.add(gray, gray.apply_batch(images))
        store.add(red, red.apply_batch(images))
        store.get(gray)  # gray is now hottest
        store.add(green, green.apply_batch(images))
        assert {spec.name for spec in store.specs()} == \
            {"8x8-gray", "8x8-green"}

    def test_oversized_newcomer_does_not_wipe_warm_entries(self, images):
        # Regression: an entry that alone exceeds the budget must evict only
        # itself — not the smaller entries that did fit.
        store = RepresentationStore(byte_budget=2 * self.ONE)
        gray, red = TransformSpec(8, "gray"), TransformSpec(8, "red")
        store.add(gray, gray.apply_batch(images))
        store.add(red, red.apply_batch(images))
        big = TransformSpec(16, "rgb")  # 6 * 16*16*3 bytes >> budget
        store.add(big, big.apply_batch(images))
        assert {spec.name for spec in store.specs()} == \
            {"8x8-gray", "8x8-red"}
        assert store.evictions == 1

    def test_oversized_array_not_kept_but_returned(self, images):
        store = RepresentationStore(byte_budget=self.ONE // 2)
        spec = TransformSpec(8, "gray")
        array = store.get_or_transform(spec, images)
        assert array.shape == (6, 8, 8, 1)
        assert len(store) == 0
        assert store.bytes_stored() == 0

    def test_budget_enforced_on_extend(self, images):
        store = RepresentationStore(byte_budget=self.ONE)
        spec = TransformSpec(8, "gray")
        store.add(spec, spec.apply_batch(images))
        assert store.rows(spec) == 6
        store.extend(spec, spec.apply_batch(images))  # doubles the bytes
        assert store.bytes_stored() <= self.ONE
        assert len(store) == 0  # the doubled array no longer fits

    def test_unbudgeted_store_never_evicts(self, images):
        store = RepresentationStore()
        for spec in (TransformSpec(8, mode) for mode in
                     ("rgb", "gray", "red", "green", "blue")):
            store.add(spec, spec.apply_batch(images))
        assert len(store) == 5
        assert store.evictions == 0
