"""Tests for the representation store."""

import numpy as np
import pytest

from repro.storage.store import RepresentationStore
from repro.storage.tiers import MEMORY
from repro.transforms.spec import TransformSpec


@pytest.fixture
def images():
    return np.random.default_rng(0).random((6, 16, 16, 3))


def test_materialize_and_get(images):
    store = RepresentationStore()
    specs = [TransformSpec(8, "rgb"), TransformSpec(8, "gray")]
    store.materialize(images, specs)
    assert len(store) == 2
    assert store.get(specs[1]).shape == (6, 8, 8, 1)
    assert specs[0] in store


def test_get_missing_raises(images):
    store = RepresentationStore()
    with pytest.raises(KeyError):
        store.get(TransformSpec(8, "rgb"))


def test_get_or_transform_caches(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "red")
    first = store.get_or_transform(spec, images)
    second = store.get_or_transform(spec, np.zeros_like(images))
    # Second call returns the cached representation, not a re-transform.
    np.testing.assert_allclose(first, second)


def test_add_validates_shape(images):
    store = RepresentationStore()
    with pytest.raises(ValueError):
        store.add(TransformSpec(8, "gray"), np.zeros((3, 8, 8, 3)))


def test_materialize_rejects_single_image():
    store = RepresentationStore()
    with pytest.raises(ValueError):
        store.materialize(np.zeros((16, 16, 3)), [TransformSpec(8)])


def test_bytes_stored_counts_all_images(images):
    store = RepresentationStore()
    spec = TransformSpec(8, "gray")
    store.materialize(images, [spec])
    assert store.bytes_stored() == 6 * 8 * 8
    assert store.bytes_stored(per_image=True) == 8 * 8


def test_load_time_uses_tier(images):
    fast = RepresentationStore(tier=MEMORY)
    spec = TransformSpec(8, "rgb")
    assert fast.load_time(spec) >= 0.0


def test_specs_listing(images):
    store = RepresentationStore()
    store.materialize(images, [TransformSpec(8, "rgb"), TransformSpec(16, "gray")])
    names = [spec.name for spec in store.specs()]
    assert names == sorted(names)
    assert len(names) == 2
