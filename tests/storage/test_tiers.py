"""Tests for storage tiers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.tiers import CAMERA_LINK, HDD, MEMORY, SSD, StorageTier, get_tier


def test_read_time_zero_bytes_is_free():
    assert SSD.read_time(0) == 0.0


def test_read_time_includes_latency_and_bandwidth():
    tier = StorageTier("t", bandwidth_bytes_per_s=100.0, latency_s=1.0)
    assert tier.read_time(200) == pytest.approx(3.0)


def test_read_time_negative_bytes_raises():
    with pytest.raises(ValueError):
        SSD.read_time(-1)


def test_invalid_tier_parameters():
    with pytest.raises(ValueError):
        StorageTier("bad", bandwidth_bytes_per_s=0)
    with pytest.raises(ValueError):
        StorageTier("bad", bandwidth_bytes_per_s=1.0, latency_s=-1)


def test_builtin_tier_ordering():
    """Faster tiers read the same payload faster."""
    payload = 1_000_000
    assert MEMORY.read_time(payload) < SSD.read_time(payload) < HDD.read_time(payload)
    assert CAMERA_LINK.read_time(payload) < SSD.read_time(payload)


def test_get_tier_roundtrip():
    assert get_tier("ssd") is SSD


def test_get_tier_unknown():
    with pytest.raises(KeyError):
        get_tier("tape")


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 10**9), b=st.integers(0, 10**9))
def test_read_time_monotone_in_bytes(a, b):
    small, large = sorted((a, b))
    assert SSD.read_time(small) <= SSD.read_time(large)
