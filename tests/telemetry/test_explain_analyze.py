"""End-to-end telemetry tests: EXPLAIN ANALYZE, traces, stats and the wire.

One two-camera database (module scope — training is shared via the session
fixtures) backs every test; the server tests run it behind a real socket.
"""

import json

import numpy as np
import pytest

from repro.core.selector import UserConstraints
from repro.costs.scenario import CAMERA
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import connect as db_connect
from repro.query.ast import SqlParseError
from repro.query.sql import parse_query, split_explain_analyze
from repro.server import connect, serve
from repro.telemetry.metrics import CATALOG
from tests.conftest import TINY_SIZE

CONSTRAINED = UserConstraints(max_accuracy_loss=0.1)
REFERENCE_PARAMS = {"base_width": 8, "n_stages": 2, "blocks_per_stage": 1}
FANOUT_SQL = ("SELECT * FROM all_cameras WHERE location = 'detroit' "
              "AND contains_object(komondor)")
ACTUAL_KEYS = {"rows_in", "rows_out", "rows_classified", "elapsed_s",
               "actual_selectivity"}


def make_corpus(n_images: int, seed: int):
    return generate_corpus((get_category("komondor"),), n_images=n_images,
                           image_size=TINY_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.9)


@pytest.fixture(scope="module")
def db(tiny_optimizer, tiny_device):
    database = db_connect(
        {"cam_a": make_corpus(30, seed=9), "cam_b": make_corpus(24, seed=10)},
        device=tiny_device, scenario=CAMERA, calibrate_target_fps=None,
        default_constraints=CONSTRAINED, plan_cache=True)
    database.register_optimizer("komondor", tiny_optimizer,
                                reference_params=REFERENCE_PARAMS)
    return database


class TestSplitExplainAnalyze:
    def test_prefix_detected_and_stripped(self):
        analyze, body = split_explain_analyze(
            "EXPLAIN ANALYZE SELECT * FROM images")
        assert analyze is True
        assert body.strip() == "SELECT * FROM images"

    def test_case_insensitive(self):
        analyze, body = split_explain_analyze(
            "explain analyze select count(*) from cam_a")
        assert analyze is True
        assert body.strip() == "select count(*) from cam_a"

    def test_bare_select_passes_through(self):
        analyze, body = split_explain_analyze("SELECT * FROM images")
        assert analyze is False
        assert body == "SELECT * FROM images"

    def test_bare_explain_is_not_analyze(self):
        analyze, _ = split_explain_analyze("EXPLAIN SELECT * FROM images")
        assert analyze is False

    def test_parse_query_sets_the_flag(self):
        query = parse_query("EXPLAIN ANALYZE SELECT * FROM images")
        assert query.explain_analyze is True
        assert parse_query("SELECT * FROM images").explain_analyze is False

    def test_analyze_without_select_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("EXPLAIN ANALYZE")


class TestExplainAnalyzeSingleTable:
    def test_report_shape(self, db):
        report = db.execute("EXPLAIN ANALYZE SELECT * FROM cam_a "
                            "WHERE contains_object(komondor)")
        assert isinstance(report, dict)
        assert report["sql"] == ("SELECT * FROM cam_a "
                                 "WHERE contains_object(komondor)")
        assert report["trace_id"].startswith("t")
        assert report["wall_time_s"] > 0
        assert report["rows"] == len(db.execute(
            "SELECT * FROM cam_a WHERE contains_object(komondor)"))
        json.dumps(report)  # the whole report must be JSON-safe

    def test_plan_nodes_carry_estimated_and_actual(self, tiny_optimizer,
                                                   tiny_device):
        # A cold database: rows_classified must count *fresh* cascade work,
        # which a warm shard (labels already materialized) reports as 0.
        db = db_connect({"cam_a": make_corpus(30, seed=9)},
                        device=tiny_device, scenario=CAMERA,
                        calibrate_target_fps=None,
                        default_constraints=CONSTRAINED)
        db.register_optimizer("komondor", tiny_optimizer,
                              reference_params=REFERENCE_PARAMS)
        report = db.explain_analyze("SELECT * FROM cam_a "
                                    "WHERE location = 'detroit' "
                                    "AND contains_object(komondor)")
        plan = report["plan"]
        steps = plan["metadata_steps"] + plan["content_steps"]
        assert len(steps) == 2
        for step in steps:
            assert 0.0 <= step["estimated_selectivity"] <= 1.0
            assert ACTUAL_KEYS <= set(step["actual"])
            assert step["actual"]["rows_in"] > 0
        cascade_step = plan["content_steps"][0]
        assert cascade_step["actual"]["rows_classified"] > 0
        actual = cascade_step["actual"]
        assert actual["actual_selectivity"] == pytest.approx(
            actual["rows_out"] / actual["rows_in"])

    def test_accepts_prefixed_and_bare_sql(self, db):
        sql = "SELECT count(*) FROM cam_a WHERE contains_object(komondor)"
        bare = db.explain_analyze(sql)
        prefixed = db.explain_analyze(f"EXPLAIN ANALYZE {sql}")
        assert bare["rows"] == prefixed["rows"]
        assert bare["plan"]["table"] == prefixed["plan"]["table"] == "cam_a"

    def test_or_tree_reports_short_circuit_savings(self, db):
        report = db.explain_analyze("SELECT * FROM cam_a "
                                    "WHERE location = 'detroit' "
                                    "OR contains_object(komondor)")
        tree = report["plan"]["predicate_tree"]
        assert tree["op"] == "or"
        assert tree["actual"]["short_circuit_rows_saved"] >= 0
        for child in tree["children"]:
            assert "estimated_selectivity" in child


class TestExplainAnalyzeFanout:
    def test_per_shard_plans_and_span_parentage(self, db):
        report = db.execute(f"EXPLAIN ANALYZE {FANOUT_SQL}")
        assert sorted(report["plans"]) == ["cam_a", "cam_b"]
        for plan in report["plans"].values():
            step = plan["content_steps"][0]
            assert ACTUAL_KEYS <= set(step["actual"])

        spans = report["spans"]
        assert spans["name"] == "query"
        assert spans["trace_id"] == report["trace_id"]
        children = {child["name"]: child for child in spans["children"]}
        assert {"plan", "table:cam_a", "table:cam_b"} <= set(children)
        for table in ("cam_a", "cam_b"):
            shard = children[f"table:{table}"]
            assert shard["attrs"]["table"] == table
            assert shard["elapsed_s"] is not None
            phases = [child["name"] for child in shard["children"]]
            assert phases[0] == "snapshot-capture"
            assert "execute" in phases
            assert phases[-1] == "merge"
            (execute_span,) = [child for child in shard["children"]
                               if child["name"] == "execute"]
            cascade_spans = [child for child in execute_span["children"]
                             if child["name"].startswith("cascade:")]
            assert cascade_spans, "per-predicate cascade spans missing"
            assert cascade_spans[0]["attrs"]["rows_in"] > 0

    def test_fanout_rows_match_plain_execution(self, db):
        report = db.execute(f"EXPLAIN ANALYZE {FANOUT_SQL}")
        assert report["rows"] == len(db.execute(FANOUT_SQL))


class TestResultSetStats:
    def test_stats_dict(self, db):
        result = db.execute("SELECT * FROM cam_a "
                            "WHERE contains_object(komondor)")
        stats = result.stats()
        assert stats["rows"] == len(result)
        assert stats["wall_time_s"] > 0
        assert stats["trace_id"].startswith("t")
        assert stats["cascades_used"]["komondor"] == \
            result.cascades_used["komondor"].name
        json.dumps(stats)

    def test_fanout_and_aggregate_stats(self, db):
        fanout = db.execute(FANOUT_SQL)
        assert sorted(fanout.stats()["cascades_used"]) == ["cam_a", "cam_b"]
        aggregate = db.execute("SELECT count(*) FROM all_cameras")
        stats = aggregate.stats()
        assert stats["rows"] == 1
        assert stats["trace_id"].startswith("t")
        json.dumps(stats)


class TestTelemetrySnapshot:
    def test_metrics_and_traces(self, db):
        db.execute("SELECT * FROM cam_a WHERE contains_object(komondor)")
        telemetry = db.telemetry()
        json.dumps(telemetry)
        for spec in CATALOG:
            assert spec.name in telemetry["metrics"]
        assert db.metrics.value("repro_query_execute_seconds",
                                table="cam_a") > 0
        assert db.metrics.value("repro_query_plan_seconds",
                                table="cam_a") > 0
        assert db.metrics.value("repro_query_rows_classified_total",
                                table="cam_a", category="komondor") > 0
        traces = telemetry["traces"]
        assert traces and traces[-1]["name"] == "query"

    def test_plan_cache_counters_on_registry(self, db):
        sql = "SELECT * FROM cam_b WHERE contains_object(komondor)"
        db.execute(sql)
        before = db.metrics.value("repro_plan_cache_lookups_total",
                                  outcome="hit")
        db.execute(sql)
        after = db.metrics.value("repro_plan_cache_lookups_total",
                                 outcome="hit")
        assert after == before + 1
        assert db.plan_cache.stats()["hits"] == after

    def test_ingest_traced(self, db):
        corpus = db.corpus_for("cam_b")
        metadata = {name: np.asarray(corpus.metadata[name][:2])
                    for name in corpus.metadata}
        db.ingest(corpus.images[:2], metadata=metadata, table="cam_b")
        ingests = [trace for trace in db.telemetry()["traces"]
                   if trace["name"] == "ingest"]
        assert ingests
        assert ingests[-1]["attrs"] == {"table": "cam_b", "rows": 2}
        assert ingests[-1]["elapsed_s"] is not None


class TestOverTheWire:
    @pytest.fixture(scope="class")
    def server(self, db):
        with serve(db, port=0, max_workers=2, max_queue=8) as running:
            yield running

    @pytest.fixture()
    def conn(self, server):
        with connect(*server.address, timeout=30) as connection:
            yield connection

    def test_explain_analyze_returns_report_not_cursor(self, conn):
        report = conn.execute("EXPLAIN ANALYZE SELECT * FROM cam_a "
                              "WHERE contains_object(komondor)")
        assert isinstance(report, dict)
        assert "plan" in report and "spans" in report
        assert report["rows"] >= 0

    def test_metrics_command_json(self, conn):
        # A request's latency is observed after its response is built, so
        # ping first and look for it in the following snapshot.
        conn.ping()
        snapshot = conn.metrics()
        for spec in CATALOG:
            assert spec.name in snapshot
        request_series = snapshot["repro_server_request_seconds"]["series"]
        assert any(series["labels"]["cmd"] == "ping"
                   for series in request_series)

    def test_metrics_command_text_exposition(self, conn):
        text = conn.metrics(format="text")
        assert isinstance(text, str)
        for spec in CATALOG:
            assert f"# TYPE {spec.name} {spec.kind}" in text

    def test_bad_format_rejected(self, conn):
        from repro.server.protocol import ProtocolError
        with pytest.raises(ProtocolError):
            conn.metrics(format="xml")

    def test_stats_and_metrics_agree(self, conn):
        cursor = conn.execute("SELECT * FROM cam_a LIMIT 1")
        cursor.close()
        stats = conn.stats()
        snapshot = conn.metrics()
        completed = [series["value"]
                     for series in snapshot["repro_queries_total"]["series"]
                     if series["labels"]["outcome"] == "completed"]
        assert stats["queries"]["completed"] == completed[0] > 0
        lookups = {series["labels"]["outcome"]: series["value"] for series in
                   snapshot["repro_plan_cache_lookups_total"]["series"]}
        assert stats["plan_cache"]["hits"] == lookups.get("hit", 0)
