"""Exposition tests: JSON snapshot rendering and Prometheus text format."""

import json

from repro.telemetry.export import render_json, render_prometheus
from repro.telemetry.metrics import CATALOG, MetricsRegistry


class TestRenderJson:
    def test_round_trips(self):
        registry = MetricsRegistry(catalog=())
        registry.counter("n", labels=("k",)).inc(k="a")
        text = render_json(registry.snapshot())
        assert json.loads(text) == registry.snapshot()


class TestRenderPrometheus:
    def test_every_catalog_metric_exposed_without_traffic(self):
        # The CI smoke check relies on this: a fresh registry's exposition
        # must already name every declared metric.
        text = render_prometheus(MetricsRegistry().snapshot())
        for spec in CATALOG:
            assert f"# HELP {spec.name} " in text
            assert f"# TYPE {spec.name} {spec.kind}" in text

    def test_counter_sample_line(self):
        registry = MetricsRegistry(catalog=())
        registry.counter("hits_total", help="Hits.",
                         labels=("table",)).inc(3, table="cam_a")
        text = render_prometheus(registry.snapshot())
        assert "# HELP hits_total Hits." in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{table="cam_a"} 3' in text.splitlines()

    def test_histogram_expansion(self):
        registry = MetricsRegistry(catalog=())
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        lines = render_prometheus(registry.snapshot()).splitlines()
        assert 'lat_bucket{le="0.1"} 0' in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 0.5" in lines
        assert "lat_count 1" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry(catalog=())
        registry.counter("n", labels=("sql",)).inc(sql='say "hi"\n')
        text = render_prometheus(registry.snapshot())
        assert r'n{sql="say \"hi\"\n"} 1' in text

    def test_gauge_series(self):
        registry = MetricsRegistry(catalog=())
        registry.gauge("depth").set(2)
        assert "depth 2" in render_prometheus(registry.snapshot()).splitlines()
