"""Unit tests for the metrics registry: kinds, labels, thread safety.

The concurrency tests here run under ``pytest --sanitize`` in CI, so the
registry's lock discipline is exercised by the runtime checker too.
"""

import threading

import pytest

from repro.telemetry.metrics import (CATALOG, DEFAULT_BUCKETS, Counter,
                                     Histogram, MetricsRegistry)


class TestCatalog:
    def test_catalog_preregistered(self):
        registry = MetricsRegistry()
        names = registry.names()
        for spec in CATALOG:
            assert spec.name in names

    def test_empty_catalog_registry_starts_bare(self):
        registry = MetricsRegistry(catalog=())
        assert registry.names() == []

    def test_catalog_kinds_respected(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_store_hits_total").kind == "counter"
        assert registry.gauge("repro_admission_queue_depth").kind == "gauge"
        assert registry.histogram(
            "repro_query_plan_seconds").kind == "histogram"


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry(catalog=())
        counter = registry.counter("requests_total", labels=("cmd",))
        counter.inc(cmd="execute")
        counter.inc(2, cmd="execute")
        counter.inc(cmd="fetch")
        assert counter.value(cmd="execute") == 3.0
        assert counter.value(cmd="fetch") == 1.0
        assert registry.value("requests_total", cmd="execute") == 3.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry(catalog=()).counter("n")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry(catalog=()).counter("n", labels=("a",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(b="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.value()

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry(catalog=())
        registry.counter("n")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("n")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("n")

    def test_unknown_metric_value_is_zero(self):
        assert MetricsRegistry(catalog=()).value("nope") == 0.0


class TestGauge:
    def test_set_and_value(self):
        gauge = MetricsRegistry(catalog=()).gauge("depth")
        gauge.set(4)
        assert gauge.value() == 4.0
        gauge.set(1.5)
        assert gauge.value() == 1.5

    def test_callback_backed_series(self):
        gauge = MetricsRegistry(catalog=()).gauge("depth")
        state = {"n": 7}
        gauge.set_function(lambda: state["n"])
        assert gauge.value() == 7.0
        state["n"] = 9
        assert gauge.value() == 9.0
        assert gauge.series() == [{"labels": {}, "value": 9.0}]


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        histogram = MetricsRegistry(catalog=()).histogram(
            "latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        (series,) = histogram.series()
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(5.555)
        assert series["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}

    def test_value_is_observation_count(self):
        histogram = MetricsRegistry(catalog=()).histogram("latency")
        assert histogram.value() == 0.0
        histogram.observe(0.2)
        histogram.observe(0.3)
        assert histogram.value() == 2.0

    def test_bound_equal_observation_lands_in_its_bucket(self):
        histogram = MetricsRegistry(catalog=()).histogram(
            "latency", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        (series,) = histogram.series()
        assert series["buckets"]["1"] == 1

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_buckets_fall_back_to_defaults(self):
        histogram = MetricsRegistry(catalog=()).histogram("h", buckets=())
        assert histogram.buckets == DEFAULT_BUCKETS

    def test_empty_buckets_rejected_when_explicit(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", "", (), threading.RLock(), buckets=())


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry(catalog=())
        counter = registry.counter("n")
        counter.inc()
        snapshot = registry.snapshot()
        snapshot["n"]["series"][0]["value"] = 99
        assert counter.value() == 1.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry(catalog=())
        registry.counter("n", help="things", labels=("kind",)).inc(kind="a")
        assert registry.snapshot() == {
            "n": {"type": "counter", "help": "things", "labels": ["kind"],
                  "series": [{"labels": {"kind": "a"}, "value": 1.0}]}}


class TestThreadSafety:
    """Exercised under ``pytest --sanitize`` by CI."""

    def test_concurrent_counter_increments(self):
        registry = MetricsRegistry(catalog=())
        counter = registry.counter("n", labels=("worker",))

        def work(worker: int) -> None:
            for _ in range(500):
                counter.inc(worker=str(worker % 2))

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(series["value"] for series in counter.series())
        assert total == 3000

    def test_concurrent_mixed_kinds_and_snapshots(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_query_execute_seconds")
        errors: list[Exception] = []

        def work() -> None:
            try:
                for index in range(200):
                    histogram.observe(0.001 * index, table="t")
                    registry.counter("repro_store_hits_total").inc()
                    registry.snapshot()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert histogram.value(table="t") == 800
        assert registry.value("repro_store_hits_total") == 800


def test_counter_and_histogram_are_registry_types():
    registry = MetricsRegistry(catalog=())
    assert isinstance(registry.counter("a"), Counter)
    assert isinstance(registry.histogram("b"), Histogram)
