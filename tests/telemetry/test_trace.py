"""Unit tests for per-query trace spans and the tracer ring buffer."""

import threading

import pytest

from repro.telemetry.trace import NO_SPAN, Tracer


class TestSpan:
    def test_parentage_and_elapsed(self):
        trace = Tracer().trace("query", sql="SELECT 1")
        with trace.root as root:
            assert root.elapsed_s is None
            with root.child("plan"):
                pass
            with root.child("table", table="cam_a") as shard:
                shard.annotate(rows=3)
        tree = trace.to_dict()
        assert tree["trace_id"] == "t000001"
        assert tree["name"] == "query"
        assert tree["attrs"] == {"sql": "SELECT 1"}
        assert tree["elapsed_s"] > 0
        assert [child["name"] for child in tree["children"]] == \
            ["plan", "table"]
        shard_node = tree["children"][1]
        assert shard_node["attrs"] == {"table": "cam_a", "rows": 3}
        assert shard_node["elapsed_s"] is not None

    def test_error_recorded_on_exit(self):
        trace = Tracer().trace("query")
        with pytest.raises(RuntimeError):
            with trace.root:
                raise RuntimeError("boom")
        assert trace.to_dict()["error"] == "RuntimeError: boom"

    def test_to_dict_is_a_deep_copy(self):
        trace = Tracer().trace("query")
        with trace.root as root:
            root.child("plan")
        tree = trace.to_dict()
        tree["children"].clear()
        assert len(trace.to_dict()["children"]) == 1

    def test_children_from_worker_threads(self):
        trace = Tracer().trace("query")
        with trace.root as root:
            def shard(name: str) -> None:
                with root.child(name) as span:
                    span.annotate(done=True)
            threads = [threading.Thread(target=shard, args=(f"t{i}",))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        tree = trace.to_dict()
        assert sorted(child["name"] for child in tree["children"]) == \
            ["t0", "t1", "t2", "t3"]
        assert all(child["elapsed_s"] is not None
                   for child in tree["children"])


class TestNoSpan:
    def test_child_returns_self_and_everything_is_noop(self):
        assert NO_SPAN.child("anything", rows=1) is NO_SPAN
        NO_SPAN.annotate(rows=2)
        with NO_SPAN.child("nested") as span:
            assert span is NO_SPAN
        assert NO_SPAN.elapsed_s is None
        assert NO_SPAN.to_dict()["name"] == "noop"


class TestTracer:
    def test_ids_are_process_ordered(self):
        tracer = Tracer()
        assert [tracer.trace("q").trace_id for _ in range(3)] == \
            ["t000001", "t000002", "t000003"]

    def test_ring_buffer_keeps_last_n(self):
        tracer = Tracer(keep=2)
        for _ in range(5):
            with tracer.trace("q").root:
                pass
        recent = tracer.recent()
        assert [trace["trace_id"] for trace in recent] == \
            ["t000004", "t000005"]

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(keep=0)

    def test_concurrent_traces(self):
        tracer = Tracer(keep=64)

        def query(index: int) -> None:
            trace = tracer.trace("q", index=index)
            with trace.root as root:
                with root.child("plan"):
                    pass

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        recent = tracer.recent()
        assert len(recent) == 8
        assert len({trace["trace_id"] for trace in recent}) == 8
