"""Tests for color transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.color import (
    COLOR_MODES,
    channels_for_mode,
    extract_channel,
    quantize_color_depth,
    to_color_mode,
    to_grayscale,
)


class TestGrayscale:
    def test_shape(self):
        out = to_grayscale(np.random.default_rng(0).random((6, 6, 3)))
        assert out.shape == (6, 6, 1)

    def test_luma_weights(self):
        image = np.zeros((1, 1, 3))
        image[0, 0] = [1.0, 0.0, 0.0]
        assert to_grayscale(image)[0, 0, 0] == pytest.approx(0.299)

    def test_white_stays_white(self):
        assert to_grayscale(np.ones((2, 2, 3)))[0, 0, 0] == pytest.approx(1.0)

    def test_rejects_single_channel(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((4, 4, 1)))


class TestChannelExtraction:
    @pytest.mark.parametrize("channel,index", [("red", 0), ("green", 1), ("blue", 2)])
    def test_extracts_correct_channel(self, channel, index):
        rng = np.random.default_rng(1)
        image = rng.random((5, 5, 3))
        out = extract_channel(image, channel)
        np.testing.assert_allclose(out[:, :, 0], image[:, :, index])

    def test_returns_copy(self):
        image = np.zeros((3, 3, 3))
        out = extract_channel(image, "red")
        out[0, 0, 0] = 5.0
        assert image[0, 0, 0] == 0.0

    def test_unknown_channel(self):
        with pytest.raises(ValueError):
            extract_channel(np.zeros((3, 3, 3)), "alpha")


class TestColorModeDispatch:
    @pytest.mark.parametrize("mode", COLOR_MODES)
    def test_channel_count_matches_helper(self, mode):
        image = np.random.default_rng(2).random((4, 4, 3))
        out = to_color_mode(image, mode)
        assert out.shape[-1] == channels_for_mode(mode)

    def test_rgb_is_copy(self):
        image = np.random.default_rng(3).random((4, 4, 3))
        out = to_color_mode(image, "rgb")
        np.testing.assert_allclose(out, image)
        out[0, 0, 0] = 9.0
        assert image[0, 0, 0] != 9.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            to_color_mode(np.zeros((2, 2, 3)), "cmyk")
        with pytest.raises(ValueError):
            channels_for_mode("cmyk")

    def test_batch_input(self):
        batch = np.random.default_rng(4).random((3, 4, 4, 3))
        assert to_color_mode(batch, "gray").shape == (3, 4, 4, 1)


class TestQuantize:
    def test_one_bit_is_binary(self):
        image = np.array([[[0.1, 0.6, 0.9]]])
        out = quantize_color_depth(image, 1)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_eight_bits_close_to_identity(self):
        image = np.random.default_rng(5).random((4, 4, 3))
        np.testing.assert_allclose(quantize_color_depth(image, 8), image, atol=1 / 255)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_color_depth(np.zeros((2, 2, 3)), 0)


@settings(max_examples=25, deadline=None)
@given(mode=st.sampled_from(list(COLOR_MODES)), seed=st.integers(0, 1000))
def test_color_modes_preserve_value_range(mode, seed):
    image = np.random.default_rng(seed).random((6, 6, 3))
    out = to_color_mode(image, mode)
    assert out.min() >= 0.0 and out.max() <= 1.0
