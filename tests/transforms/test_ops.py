"""Tests for normalization, flips and composition."""

import numpy as np
import pytest

from repro.transforms.compose import Compose
from repro.transforms.ops import horizontal_flip, normalize
from repro.transforms.resize import resize
from repro.transforms.color import to_grayscale


class TestNormalize:
    def test_standardizes(self):
        out = normalize(np.array([0.0, 0.5, 1.0]), mean=0.5, std=0.5)
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0])

    def test_zero_std_raises(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(3), std=0.0)

    def test_per_channel_std(self):
        image = np.ones((2, 2, 3))
        out = normalize(image, mean=0.0, std=np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(out[0, 0], [1.0, 0.5, 0.25])


class TestHorizontalFlip:
    def test_single_image(self):
        image = np.zeros((2, 3, 1))
        image[0, 0, 0] = 1.0
        flipped = horizontal_flip(image)
        assert flipped[0, 2, 0] == 1.0
        assert flipped[0, 0, 0] == 0.0

    def test_batch(self):
        batch = np.zeros((2, 2, 3, 1))
        batch[:, 0, 0, 0] = 1.0
        flipped = horizontal_flip(batch)
        assert np.all(flipped[:, 0, 2, 0] == 1.0)

    def test_double_flip_is_identity(self):
        image = np.random.default_rng(0).random((5, 7, 3))
        np.testing.assert_allclose(horizontal_flip(horizontal_flip(image)), image)

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            horizontal_flip(np.zeros((4, 4)))


class TestCompose:
    def test_applies_in_order(self):
        pipeline = Compose([lambda img: resize(img, 8), to_grayscale])
        out = pipeline(np.random.default_rng(0).random((16, 16, 3)))
        assert out.shape == (8, 8, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Compose([])

    def test_len(self):
        assert len(Compose([to_grayscale])) == 1

    def test_nested_compose(self):
        inner = Compose([lambda img: resize(img, 8)])
        outer = Compose([inner, to_grayscale])
        out = outer(np.random.default_rng(1).random((16, 16, 3)))
        assert out.shape == (8, 8, 1)
