"""Tests for resolution-scaling transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.resize import resize, resize_area, resize_bilinear, resize_nearest


def gradient_image(size=16, channels=3):
    ramp = np.linspace(0, 1, size)
    image = np.broadcast_to(ramp[None, :, None], (size, size, channels))
    return np.array(image)


class TestResizeModes:
    @pytest.mark.parametrize("fn", [resize_nearest, resize_bilinear, resize_area])
    def test_output_shape(self, fn):
        out = fn(gradient_image(16), 8)
        assert out.shape == (8, 8, 3)

    @pytest.mark.parametrize("fn", [resize_nearest, resize_bilinear, resize_area])
    def test_batch_input(self, fn):
        batch = np.stack([gradient_image(16) for _ in range(4)])
        out = fn(batch, 8)
        assert out.shape == (4, 8, 8, 3)

    def test_constant_image_stays_constant(self):
        image = np.full((12, 12, 3), 0.7)
        for fn in (resize_nearest, resize_bilinear, resize_area):
            np.testing.assert_allclose(fn(image, 6), 0.7)

    def test_area_is_exact_block_average(self):
        image = np.zeros((4, 4, 1))
        image[:2, :2, 0] = 1.0
        out = resize_area(image, 2)
        np.testing.assert_allclose(out[:, :, 0], [[1.0, 0.0], [0.0, 0.0]])

    def test_area_falls_back_for_non_integer_ratio(self):
        out = resize_area(gradient_image(10), 4)
        assert out.shape == (4, 4, 3)

    def test_upscaling_supported(self):
        out = resize_bilinear(gradient_image(8), 16)
        assert out.shape == (16, 16, 3)

    def test_bilinear_preserves_horizontal_gradient_order(self):
        out = resize_bilinear(gradient_image(16), 8)
        row = out[0, :, 0]
        assert np.all(np.diff(row) >= -1e-9)


class TestResizeDispatch:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            resize(gradient_image(), 8, mode="bicubic")

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            resize(gradient_image(), 0)

    def test_noop_returns_copy(self):
        image = gradient_image(8)
        out = resize(image, 8)
        np.testing.assert_allclose(out, image)
        out[0, 0, 0] = 99.0
        assert image[0, 0, 0] != 99.0

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            resize(np.zeros((4, 4)), 2)


@settings(max_examples=25, deadline=None)
@given(size=st.sampled_from([8, 12, 16]), target=st.sampled_from([2, 4, 8]),
       mode=st.sampled_from(["nearest", "bilinear", "area"]))
def test_resize_preserves_value_range(size, target, mode):
    """Resizing never produces values outside the input's [min, max] range."""
    rng = np.random.default_rng(size * target)
    image = rng.random((size, size, 3))
    out = resize(image, target, mode=mode)
    assert out.min() >= image.min() - 1e-9
    assert out.max() <= image.max() + 1e-9
