"""Tests for TransformSpec and the transformation grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.spec import (
    PAPER_COLOR_MODES,
    PAPER_RESOLUTIONS,
    TransformSpec,
    standard_transform_grid,
    transform_subsets,
)


class TestTransformSpec:
    def test_shape_and_values(self):
        spec = TransformSpec(30, "gray")
        assert spec.shape == (30, 30, 1)
        assert spec.num_values == 900
        assert spec.channels == 1

    def test_name_is_stable(self):
        assert TransformSpec(60, "red").name == "60x60-red"

    def test_rgb_values_match_paper_example(self):
        """The paper quotes 2,700 values for 30x30 RGB and 150,528 for 224x224."""
        assert TransformSpec(30, "rgb").num_values == 2700
        assert TransformSpec(224, "rgb").num_values == 150528

    def test_apply_shapes(self):
        spec = TransformSpec(8, "gray")
        image = np.random.default_rng(0).random((16, 16, 3))
        assert spec.apply(image).shape == (8, 8, 1)
        batch = np.random.default_rng(1).random((5, 16, 16, 3))
        assert spec.apply_batch(batch).shape == (5, 8, 8, 1)

    def test_apply_batch_rejects_single_image(self):
        with pytest.raises(ValueError):
            TransformSpec(8).apply_batch(np.zeros((16, 16, 3)))

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            TransformSpec(0)
        with pytest.raises(ValueError):
            TransformSpec(8, "hsv")

    def test_specs_are_hashable_and_comparable(self):
        assert TransformSpec(8, "rgb") == TransformSpec(8, "rgb")
        assert len({TransformSpec(8, "rgb"), TransformSpec(8, "rgb")}) == 1


class TestGrids:
    def test_paper_grid_size(self):
        grid = standard_transform_grid()
        assert len(grid) == len(PAPER_RESOLUTIONS) * len(PAPER_COLOR_MODES) == 20

    def test_grid_names_are_unique(self):
        grid = standard_transform_grid((8, 16), ("rgb", "gray"))
        assert len({spec.name for spec in grid}) == len(grid)

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            standard_transform_grid((), ("rgb",))

    def test_subsets_structure(self):
        subsets = transform_subsets((8, 16, 32), ("rgb", "red", "gray"))
        assert len(subsets["none"]) == 1
        assert subsets["none"][0].resolution == 32
        assert subsets["none"][0].color_mode == "rgb"
        assert len(subsets["color"]) == 3
        assert all(spec.resolution == 32 for spec in subsets["color"])
        assert len(subsets["resize"]) == 3
        assert all(spec.color_mode == "rgb" for spec in subsets["resize"])
        assert len(subsets["full"]) == 9

    def test_subsets_are_contained_in_full(self):
        subsets = transform_subsets((8, 16), ("rgb", "gray"))
        full_names = {spec.name for spec in subsets["full"]}
        for name in ("none", "color", "resize"):
            assert {spec.name for spec in subsets[name]} <= full_names


@settings(max_examples=30, deadline=None)
@given(resolution=st.sampled_from([8, 16, 30, 60]),
       mode=st.sampled_from(list(PAPER_COLOR_MODES)))
def test_num_values_consistent_with_apply(resolution, mode):
    spec = TransformSpec(resolution, mode)
    image = np.random.default_rng(resolution).random((64, 64, 3))
    assert spec.apply(image).size == spec.num_values
